//! The heterogeneous platform model.
//!
//! A platform is the paper's complete graph `G = (P, E)`: a set of
//! processors, each weighted by its relative cycle-time `wᵢ` (seconds per
//! megaflop) and local memory, and a symmetric link-capacity matrix
//! `c_ij` (milliseconds to transfer a one-megabit message), exactly the
//! quantities of the paper's Tables 1 and 2. Processors are grouped into
//! *communication segments*; transfers within a segment run in parallel
//! (switched network), while transfers between segments share a serial
//! inter-segment link (modeled by [`crate::contention`]).

use crate::accel::DeviceSpec;

/// One computing node of the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorSpec {
    /// Display name, e.g. `"p3"`.
    pub name: String,
    /// Architecture string; surfaces in `RunReport` per-rank summaries
    /// and keys device attachment in the accel presets.
    pub arch: &'static str,
    /// Cycle-time in seconds per megaflop (the paper's `wᵢ`); smaller is
    /// faster.
    pub cycle_time: f64,
    /// Main memory in MB; bounds how many pixel vectors the node can hold
    /// (WEA's upper bound).
    pub memory_mb: u64,
    /// Cache size in KB; documents the node class alongside `arch` (the
    /// kernel cost model is analytic and does not read it).
    pub cache_kb: u64,
    /// Communication segment this node is attached to.
    pub segment: usize,
    /// Optional accelerator attached to this node. `None` models a
    /// plain CPU host; `Some` makes the node's effective speed a
    /// host + device pair (see [`crate::accel`]).
    pub device: Option<DeviceSpec>,
}

impl ProcessorSpec {
    /// Relative speed `1/wᵢ` in megaflops per second (host CPU only;
    /// device throughput is accounted per offloaded kernel).
    #[inline]
    pub fn speed(&self) -> f64 {
        1.0 / self.cycle_time
    }

    /// Attaches a device (builder style).
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = Some(device);
        self
    }

    /// Replaces the architecture label (builder style).
    pub fn with_arch(mut self, arch: &'static str) -> Self {
        self.arch = arch;
        self
    }
}

/// Default per-message software latency in seconds (MPI call overhead on
/// a 2006-era Ethernet LAN).
pub const DEFAULT_MSG_LATENCY_S: f64 = 200.0e-6;

/// A complete platform: processors plus the link-capacity matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: String,
    procs: Vec<ProcessorSpec>,
    /// `links[i][j]` = ms to move one megabit from `i` to `j`; symmetric,
    /// zero on the diagonal (local "transfer" is free).
    links: Vec<Vec<f64>>,
    /// Per-message software latency in seconds.
    msg_latency_s: f64,
}

impl Platform {
    /// Builds a platform, validating the link matrix.
    ///
    /// # Panics
    /// Panics when the matrix is not square of matching size, not
    /// symmetric, has non-zero diagonal, or any capacity is negative.
    pub fn new(name: impl Into<String>, procs: Vec<ProcessorSpec>, links: Vec<Vec<f64>>) -> Self {
        let p = procs.len();
        assert!(p > 0, "Platform::new: need at least one processor");
        assert_eq!(links.len(), p, "link matrix must be {p}x{p}");
        for (i, row) in links.iter().enumerate() {
            assert_eq!(row.len(), p, "link matrix must be {p}x{p}");
            assert_eq!(row[i], 0.0, "self-link c_{{{i}{i}}} must be zero");
            for (j, &c) in row.iter().enumerate() {
                assert!(c >= 0.0, "negative link capacity c_{{{i}{j}}}");
                assert!(
                    (c - links[j][i]).abs() < 1e-12,
                    "link matrix must be symmetric (c_{{{i}{j}}} != c_{{{j}{i}}})"
                );
            }
        }
        for proc in &procs {
            assert!(proc.cycle_time > 0.0, "cycle_time must be positive");
            if let Some(device) = &proc.device {
                device.validate();
            }
        }
        Platform {
            name: name.into(),
            procs,
            links,
            msg_latency_s: DEFAULT_MSG_LATENCY_S,
        }
    }

    /// Attaches a device to one node of an already-built platform
    /// (builder style). The presets attach devices while assembling
    /// their [`ProcessorSpec`]s; this is the entry point for callers
    /// that start from a generated platform — the chaos harness drops
    /// accelerators onto random hosts through it.
    ///
    /// # Panics
    /// Panics when `rank` is out of range or the device spec is
    /// invalid.
    pub fn with_device_at(mut self, rank: usize, device: DeviceSpec) -> Self {
        assert!(
            rank < self.procs.len(),
            "with_device_at: rank {rank} out of range ({} procs)",
            self.procs.len()
        );
        device.validate();
        self.procs[rank].device = Some(device);
        self
    }

    /// Sets the per-message software latency (builder style). Fabrics
    /// like Myrinet have an order of magnitude lower latency than
    /// commodity Ethernet.
    pub fn with_msg_latency(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "latency must be non-negative");
        self.msg_latency_s = secs;
        self
    }

    /// Per-message software latency in seconds.
    #[inline]
    pub fn msg_latency_s(&self) -> f64 {
        self.msg_latency_s
    }

    /// Builds a uniform (homogeneous) platform: `p` identical processors
    /// in one segment, all pairwise links at `link_ms_per_mbit`.
    ///
    /// ```
    /// use simnet::Platform;
    /// let p = Platform::uniform("lab", 8, 0.01, 1024, 26.64);
    /// assert_eq!(p.num_procs(), 8);
    /// assert!(p.is_compute_homogeneous());
    /// ```
    pub fn uniform(
        name: impl Into<String>,
        p: usize,
        cycle_time: f64,
        memory_mb: u64,
        link_ms_per_mbit: f64,
    ) -> Self {
        let procs = (0..p)
            .map(|i| ProcessorSpec {
                name: format!("p{}", i + 1),
                arch: "homogeneous node",
                cycle_time,
                memory_mb,
                cache_kb: 1024,
                segment: 0,
                device: None,
            })
            .collect();
        let links = (0..p)
            .map(|i| {
                (0..p)
                    .map(|j| if i == j { 0.0 } else { link_ms_per_mbit })
                    .collect()
            })
            .collect();
        Platform::new(name, procs, links)
    }

    /// Platform display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// Processor `i`'s specification.
    #[inline]
    pub fn proc(&self, i: usize) -> &ProcessorSpec {
        &self.procs[i]
    }

    /// All processors.
    pub fn procs(&self) -> &[ProcessorSpec] {
        &self.procs
    }

    /// Per-rank hardware summaries (name, arch, attached-device label)
    /// for [`crate::report::RunReport::ranks`].
    pub fn rank_summaries(&self) -> Vec<crate::report::RankSummary> {
        self.procs
            .iter()
            .map(|p| crate::report::RankSummary {
                name: p.name.clone(),
                arch: p.arch,
                device: p.device.map(|d| d.kind.label()),
            })
            .collect()
    }

    /// Link capacity `c_ij` in ms per megabit.
    #[inline]
    pub fn link_ms_per_mbit(&self, i: usize, j: usize) -> f64 {
        self.links[i][j]
    }

    /// Virtual transfer duration, in **seconds**, of a `bits`-bit message
    /// from `i` to `j`.
    #[inline]
    pub fn transfer_secs(&self, i: usize, j: usize, bits: u64) -> f64 {
        let mbits = bits as f64 / 1.0e6;
        mbits * self.links[i][j] / 1.0e3
    }

    /// Segment of processor `i`.
    #[inline]
    pub fn segment_of(&self, i: usize) -> usize {
        self.procs[i].segment
    }

    /// `true` when `i` and `j` sit on different communication segments
    /// (their transfer then contends for the serial inter-segment link).
    #[inline]
    pub fn crosses_segments(&self, i: usize, j: usize) -> bool {
        self.segment_of(i) != self.segment_of(j)
    }

    /// Relative speeds `1/wᵢ`, normalised to sum to one — the ideal
    /// heterogeneous workload fractions `αᵢ` for compute-bound work.
    pub fn relative_speeds(&self) -> Vec<f64> {
        let speeds: Vec<f64> = self.procs.iter().map(|p| p.speed()).collect();
        let total: f64 = speeds.iter().sum();
        speeds.into_iter().map(|s| s / total).collect()
    }

    /// Aggregate speed `Σ 1/wᵢ` in Mflop/s.
    pub fn aggregate_speed(&self) -> f64 {
        self.procs.iter().map(|p| p.speed()).sum()
    }

    /// Mean per-processor speed in Mflop/s (Lastovetsky principle 2).
    pub fn mean_speed(&self) -> f64 {
        self.aggregate_speed() / self.num_procs() as f64
    }

    /// Mean off-diagonal link capacity in ms/Mbit (Lastovetsky
    /// principle 3: the aggregate communication characteristic).
    pub fn mean_link(&self) -> f64 {
        let p = self.num_procs();
        if p < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..p {
            for j in 0..p {
                if i != j {
                    sum += self.links[i][j];
                }
            }
        }
        sum / (p * (p - 1)) as f64
    }

    /// `true` when every processor has the same cycle-time.
    pub fn is_compute_homogeneous(&self) -> bool {
        let w0 = self.procs[0].cycle_time;
        self.procs.iter().all(|p| (p.cycle_time - w0).abs() < 1e-15)
    }

    /// `true` when every off-diagonal link has the same capacity.
    pub fn is_network_homogeneous(&self) -> bool {
        let p = self.num_procs();
        let mut first: Option<f64> = None;
        for i in 0..p {
            for j in 0..p {
                if i == j {
                    continue;
                }
                match first {
                    None => first = Some(self.links[i][j]),
                    Some(c) => {
                        if (self.links[i][j] - c).abs() > 1e-12 {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> Platform {
        Platform::new(
            "two",
            vec![
                ProcessorSpec {
                    name: "a".into(),
                    arch: "x",
                    cycle_time: 0.01,
                    memory_mb: 1024,
                    cache_kb: 512,
                    segment: 0,
                    device: None,
                },
                ProcessorSpec {
                    name: "b".into(),
                    arch: "x",
                    cycle_time: 0.02,
                    memory_mb: 512,
                    cache_kb: 512,
                    segment: 1,
                    device: None,
                },
            ],
            vec![vec![0.0, 10.0], vec![10.0, 0.0]],
        )
    }

    #[test]
    fn accessors() {
        let p = two_node();
        assert_eq!(p.num_procs(), 2);
        assert_eq!(p.proc(0).name, "a");
        assert_eq!(p.link_ms_per_mbit(0, 1), 10.0);
        assert!(p.crosses_segments(0, 1));
    }

    #[test]
    fn transfer_secs_units() {
        let p = two_node();
        // 1 megabit at 10 ms/Mbit = 10 ms = 0.01 s.
        assert!((p.transfer_secs(0, 1, 1_000_000) - 0.01).abs() < 1e-12);
        // Self transfer is free.
        assert_eq!(p.transfer_secs(0, 0, 1_000_000), 0.0);
    }

    #[test]
    fn relative_speeds_sum_to_one_and_rank_correctly() {
        let p = two_node();
        let s = p.relative_speeds();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[0] > s[1], "faster node must get the larger share");
        assert!((s[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_platform_is_homogeneous() {
        let p = Platform::uniform("homo", 4, 0.0131, 2048, 26.64);
        assert!(p.is_compute_homogeneous());
        assert!(p.is_network_homogeneous());
        assert_eq!(p.num_procs(), 4);
        assert!((p.mean_link() - 26.64).abs() < 1e-12);
        assert!(!p.crosses_segments(0, 3));
    }

    #[test]
    fn heterogeneity_predicates() {
        let p = two_node();
        assert!(!p.is_compute_homogeneous());
        assert!(p.is_network_homogeneous());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_links_rejected() {
        Platform::new(
            "bad",
            Platform::uniform("t", 2, 0.01, 1, 1.0).procs().to_vec(),
            vec![vec![0.0, 1.0], vec![2.0, 0.0]],
        );
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn nonzero_diagonal_rejected() {
        Platform::new(
            "bad",
            Platform::uniform("t", 2, 0.01, 1, 1.0).procs().to_vec(),
            vec![vec![1.0, 1.0], vec![1.0, 0.0]],
        );
    }

    #[test]
    fn device_attachment_builder_and_validation() {
        let spec = crate::accel::DeviceSpec::commodity_gpu();
        let procs: Vec<ProcessorSpec> = Platform::uniform("t", 2, 0.01, 1024, 1.0)
            .procs()
            .iter()
            .cloned()
            .map(|p| p.with_device(spec).with_arch("gpu host"))
            .collect();
        let plat = Platform::new("gpu", procs, vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(plat.proc(0).device, Some(spec));
        assert_eq!(plat.proc(1).arch, "gpu host");
    }

    #[test]
    #[should_panic(expected = "throughput")]
    fn invalid_device_rejected_by_platform() {
        let mut procs = Platform::uniform("t", 2, 0.01, 1024, 1.0).procs().to_vec();
        procs[0].device = Some(crate::accel::DeviceSpec {
            throughput_mflops: f64::NAN,
            ..crate::accel::DeviceSpec::commodity_gpu()
        });
        Platform::new("bad", procs, vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
    }

    #[test]
    fn mean_speed_and_aggregate() {
        let p = two_node();
        assert!((p.aggregate_speed() - 150.0).abs() < 1e-9);
        assert!((p.mean_speed() - 75.0).abs() < 1e-9);
    }
}
