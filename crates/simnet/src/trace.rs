//! Execution tracing: per-rank virtual-time event timelines.
//!
//! [`crate::Engine::run_traced`] records every compute interval, send
//! overhead and receive wait with its virtual start/end times, giving a
//! Gantt-style view of a run — the tool for understanding *why* a
//! network shows a particular COM/SEQ/PAR split or imbalance.
//!
//! Events are collected from all rank threads and canonically sorted, so
//! traces of deterministic programs are themselves deterministic.

use std::fmt::Write as _;

/// What a rank was doing during a traced interval.
///
/// `Recv` and `Offload` carry the extra timing facts the post-run
/// profiler ([`crate::prof`]) needs: message provenance for
/// critical-path extraction and the nominal offload sub-phase split.
/// The fields are `f64`, so the enum is `PartialEq` but (deliberately)
/// not `Eq`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// Parallel-phase computation.
    ComputePar,
    /// Offloaded kernel execution on the rank's attached accelerator.
    /// The four fields are the *nominal* (pre-fault-dilation) seconds of
    /// the closed form [`crate::accel::DeviceSpec::offload_secs`]
    /// charges: launch latency, host→device staging, device compute,
    /// device→host staging.
    Offload {
        /// Fixed per-launch dispatch latency (nominal seconds).
        launch: f64,
        /// Host→device transfer (nominal seconds).
        h2d: f64,
        /// Device kernel execution (nominal seconds).
        compute: f64,
        /// Device→host transfer (nominal seconds).
        d2h: f64,
    },
    /// Sequential-phase computation (root-only work).
    ComputeSeq,
    /// Sender-side message injection overhead.
    Send {
        /// Destination rank.
        dst: usize,
    },
    /// Waiting for a message: a delivered receive, a deadline timeout,
    /// or a failure observation (see `delivered`).
    Recv {
        /// Source rank.
        src: usize,
        /// `true` when a message was actually delivered; `false` for a
        /// [`crate::Ctx::recv_deadline`] timeout or a failure
        /// observation (both pure waits — no message dependency).
        delivered: bool,
        /// The sender's virtual clock when it injected the message
        /// (after its send overhead). Meaningful only when `delivered`.
        sent_at: f64,
        /// Link-occupancy seconds of the delivered transfer.
        transfer: f64,
        /// Seconds the transfer queued behind earlier reservations on
        /// the serial inter-segment link (`0` for intra-segment and
        /// worker↔worker traffic).
        queued: f64,
    },
    /// The rank failed at this instant (zero-length marker).
    Crash,
    /// Master-side recovery span: re-planning after losing a worker.
    Recovery {
        /// The rank whose loss triggered the recovery.
        lost: usize,
    },
    /// Membership epoch bump (zero-length marker): the coordinator's
    /// view observed a new failure and advanced to `epoch`.
    EpochBump {
        /// The epoch the view moved to.
        epoch: u64,
    },
}

/// One traced interval on a rank's virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The rank the event belongs to.
    pub rank: usize,
    /// Virtual start time (seconds).
    pub start: f64,
    /// Virtual end time (seconds).
    pub end: f64,
    /// Activity kind.
    pub kind: TraceKind,
}

/// A complete run trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events sorted by `(rank, start, end)`.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Canonicalises event order (called by the engine after the run).
    pub(crate) fn finalize(&mut self) {
        self.events.sort_by(|a, b| {
            (a.rank, a.start, a.end)
                .partial_cmp(&(b.rank, b.start, b.end))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    /// Events of one rank, in timeline order.
    pub fn for_rank(&self, rank: usize) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// Latest event end across all ranks.
    pub fn horizon(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Renders a text Gantt chart, one row per rank, `width` columns
    /// wide. Legend: `#` parallel compute, `D` device offload,
    /// `S` sequential compute, `s` send overhead, `r` receive wait,
    /// `X` crash, `R` recovery, `E` epoch bump, `.` idle.
    pub fn gantt(&self, num_ranks: usize, width: usize) -> String {
        let horizon = self.horizon().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "virtual time 0 .. {horizon:.3} s  (# par, D offload, S seq, s send, r recv, X crash, R recovery, E epoch, . idle)"
        );
        for rank in 0..num_ranks {
            let mut row = vec!['.'; width];
            for e in self.for_rank(rank) {
                let mut a = ((e.start / horizon) * width as f64).floor() as usize;
                let mut b = (((e.end / horizon) * width as f64).ceil() as usize).min(width);
                if b <= a {
                    // Zero-length markers (e.g. a crash) still get one cell.
                    a = a.min(width.saturating_sub(1));
                    b = (a + 1).min(width);
                }
                let ch = match e.kind {
                    TraceKind::ComputePar => '#',
                    TraceKind::Offload { .. } => 'D',
                    TraceKind::ComputeSeq => 'S',
                    TraceKind::Send { .. } => 's',
                    TraceKind::Recv { .. } => 'r',
                    TraceKind::Crash => 'X',
                    TraceKind::Recovery { .. } => 'R',
                    TraceKind::EpochBump { .. } => 'E',
                };
                for c in row.iter_mut().take(b).skip(a.min(width)) {
                    // Compute (host or device) paints over comm; fault
                    // markers paint over everything (they're the rarest
                    // and most important).
                    let is_compute = ch == '#' || ch == 'D';
                    if *c == '.'
                        || (*c != '#' && *c != 'D' && is_compute)
                        || ch == 'X'
                        || ch == 'R'
                        || ch == 'E'
                    {
                        *c = ch;
                    }
                }
            }
            let _ = writeln!(out, "r{rank:03} |{}|", row.into_iter().collect::<String>());
        }
        out
    }

    /// Total traced busy seconds per rank (compute + send + recv).
    pub fn busy_per_rank(&self, num_ranks: usize) -> Vec<f64> {
        let mut busy = vec![0.0; num_ranks];
        for e in &self.events {
            if e.rank < num_ranks {
                busy[e.rank] += e.end - e.start;
            }
        }
        busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Ctx, Engine};
    use crate::Platform;

    fn traced_run() -> (crate::RunReport<usize>, Trace) {
        let engine = Engine::new(Platform::uniform("t", 3, 0.01, 64, 5.0));
        engine.run_traced(|ctx: &mut Ctx<u64>| {
            ctx.compute_par(100.0 * (ctx.rank() + 1) as f64);
            if ctx.is_root() {
                ctx.compute_seq(50.0);
                for src in 1..ctx.num_ranks() {
                    let _ = ctx.recv(src);
                }
            } else {
                ctx.send(0, ctx.rank() as u64);
            }
            ctx.rank()
        })
    }

    #[test]
    fn trace_captures_all_kinds() {
        let (_, trace) = traced_run();
        let kinds: Vec<_> = trace.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceKind::ComputePar));
        assert!(kinds.contains(&TraceKind::ComputeSeq));
        assert!(kinds.iter().any(|k| matches!(k, TraceKind::Send { .. })));
        assert!(kinds.iter().any(|k| matches!(k, TraceKind::Recv { .. })));
    }

    #[test]
    fn events_are_well_formed_and_sorted() {
        let (_, trace) = traced_run();
        for e in &trace.events {
            assert!(e.end >= e.start, "negative interval: {e:?}");
            assert!(e.rank < 3);
        }
        for w in trace.events.windows(2) {
            assert!(
                (w[0].rank, w[0].start) <= (w[1].rank, w[1].start),
                "not sorted"
            );
        }
    }

    #[test]
    fn per_rank_intervals_do_not_overlap() {
        let (_, trace) = traced_run();
        for rank in 0..3 {
            let evs: Vec<_> = trace.for_rank(rank).collect();
            for w in evs.windows(2) {
                assert!(w[1].start >= w[0].end - 1e-12, "rank {rank}: overlap {w:?}");
            }
        }
    }

    #[test]
    fn trace_busy_matches_ledger() {
        let (report, trace) = traced_run();
        let busy = trace.busy_per_rank(3);
        for (rank, ledger) in report.ledgers.iter().enumerate() {
            // Trace busy covers compute + send overhead + recv wait
            // (comm + idle), i.e. everything except untraced gaps.
            let expect = ledger.compute_par + ledger.compute_seq + ledger.comm + ledger.idle;
            assert!(
                (busy[rank] - expect).abs() < 1e-9,
                "rank {rank}: trace {} vs ledger {}",
                busy[rank],
                expect
            );
        }
    }

    #[test]
    fn gantt_renders_every_rank() {
        let (_, trace) = traced_run();
        let chart = trace.gantt(3, 40);
        assert_eq!(chart.lines().count(), 4); // header + 3 ranks
        assert!(chart.contains("r000"));
        assert!(chart.contains('#'));
    }

    #[test]
    fn gantt_marks_crash_and_recovery() {
        let trace = Trace {
            events: vec![
                TraceEvent {
                    rank: 0,
                    start: 0.5,
                    end: 1.0,
                    kind: TraceKind::Recovery { lost: 1 },
                },
                TraceEvent {
                    rank: 1,
                    start: 1.0,
                    end: 1.0, // zero-length crash marker at the horizon
                    kind: TraceKind::Crash,
                },
            ],
        };
        let chart = trace.gantt(2, 20);
        assert!(chart.contains('R'), "recovery span rendered:\n{chart}");
        assert!(chart.contains('X'), "crash marker rendered:\n{chart}");
    }

    #[test]
    fn traces_are_deterministic() {
        let (_, a) = traced_run();
        let (_, b) = traced_run();
        assert_eq!(a.events, b.events);
    }
}
