//! The paper's evaluation platforms, transcribed from Tables 1 and 2.
//!
//! Four 16-node networks of workstations (fully heterogeneous, fully
//! homogeneous, partially heterogeneous, partially homogeneous) plus the
//! Thunderhead Beowulf cluster at NASA GSFC. The four networks are
//! *approximately equivalent* under Lastovetsky & Reddy's framework — see
//! [`crate::equivalent`] for the checker.

use crate::accel::DeviceSpec;
use crate::platform::{Platform, ProcessorSpec};

/// Homogeneous-network link capacity in ms per megabit (paper §3.1).
pub const HOMOGENEOUS_LINK_MS: f64 = 26.64;

/// Homogeneous workstation cycle-time in seconds per megaflop (paper §3.1).
pub const HOMOGENEOUS_CYCLE_TIME: f64 = 0.0131;

/// Intra-segment link capacities of the heterogeneous network (Table 2
/// diagonal blocks), ms per megabit, for segments s1..s4.
pub const SEGMENT_INTERNAL_MS: [f64; 4] = [19.26, 17.65, 16.38, 14.05];

/// Inter-segment link capacities of the heterogeneous network (Table 2
/// off-diagonal blocks), ms per megabit; `INTERSEGMENT_MS[a][b]` for
/// segments `a != b`.
pub const INTERSEGMENT_MS: [[f64; 4]; 4] = [
    [0.0, 48.31, 96.62, 154.76],
    [48.31, 0.0, 48.31, 106.45],
    [96.62, 48.31, 0.0, 58.14],
    [154.76, 106.45, 58.14, 0.0],
];

/// The 16 heterogeneous workstations of Table 1: `(arch, cycle-time,
/// memory MB, cache KB, segment)`. Segments: `s1 = {p1..p4}`,
/// `s2 = {p5..p8}`, `s3 = {p9, p10}`, `s4 = {p11..p16}`.
#[rustfmt::skip]
const TABLE1: [(&str, f64, u64, u64, usize); 16] = [
    ("FreeBSD i386 Intel Pentium 4", 0.0058, 2048, 1024, 0), // p1
    ("Linux Intel Xeon",             0.0102, 1024,  512, 0), // p2
    ("Linux AMD Athlon",             0.0026, 7748,  512, 0), // p3
    ("Linux Intel Xeon",             0.0072, 1024, 1024, 0), // p4
    ("Linux Intel Xeon",             0.0102, 1024,  512, 1), // p5
    ("Linux Intel Xeon",             0.0072, 1024, 1024, 1), // p6
    ("Linux Intel Xeon",             0.0072, 1024, 1024, 1), // p7
    ("Linux Intel Xeon",             0.0102, 1024,  512, 1), // p8
    ("Linux Intel Xeon",             0.0072, 1024, 1024, 2), // p9
    ("SunOS SUNW UltraSparc-5",      0.0451,  512, 2048, 2), // p10
    ("Linux AMD Athlon",             0.0131, 2048, 1024, 3), // p11
    ("Linux AMD Athlon",             0.0131, 2048, 1024, 3), // p12
    ("Linux AMD Athlon",             0.0131, 2048, 1024, 3), // p13
    ("Linux AMD Athlon",             0.0131, 2048, 1024, 3), // p14
    ("Linux AMD Athlon",             0.0131, 2048, 1024, 3), // p15
    ("Linux AMD Athlon",             0.0131, 2048, 1024, 3), // p16
];

fn table1_procs() -> Vec<ProcessorSpec> {
    TABLE1
        .iter()
        .enumerate()
        .map(|(i, &(arch, w, mem, cache, seg))| ProcessorSpec {
            name: format!("p{}", i + 1),
            arch,
            cycle_time: w,
            memory_mb: mem,
            cache_kb: cache,
            segment: seg,
            device: None,
        })
        .collect()
}

fn table2_links(segments: &[usize]) -> Vec<Vec<f64>> {
    let p = segments.len();
    (0..p)
        .map(|i| {
            (0..p)
                .map(|j| {
                    if i == j {
                        0.0
                    } else if segments[i] == segments[j] {
                        SEGMENT_INTERNAL_MS[segments[i]]
                    } else {
                        INTERSEGMENT_MS[segments[i]][segments[j]]
                    }
                })
                .collect()
        })
        .collect()
}

/// The **fully heterogeneous** network: Table 1 processors on the Table 2
/// network (four segments joined by serial links).
pub fn fully_heterogeneous() -> Platform {
    let procs = table1_procs();
    let segments: Vec<usize> = procs.iter().map(|p| p.segment).collect();
    Platform::new("fully-heterogeneous", procs, table2_links(&segments))
}

/// The **fully homogeneous** network: 16 identical Linux workstations
/// (`w = 0.0131` s/Mflop) on a homogeneous switched network
/// (`c = 26.64` ms/Mbit).
pub fn fully_homogeneous() -> Platform {
    let mut p = Platform::uniform(
        "fully-homogeneous",
        16,
        HOMOGENEOUS_CYCLE_TIME,
        2048,
        HOMOGENEOUS_LINK_MS,
    );
    // `uniform` already puts everyone in segment 0; just rename.
    p = Platform::new("fully-homogeneous", p.procs().to_vec(), links_of(&p));
    p
}

fn links_of(p: &Platform) -> Vec<Vec<f64>> {
    let n = p.num_procs();
    (0..n)
        .map(|i| (0..n).map(|j| p.link_ms_per_mbit(i, j)).collect())
        .collect()
}

/// The **partially heterogeneous** network: the Table 1 heterogeneous
/// processors, but interconnected by the homogeneous network (single
/// switched segment at 26.64 ms/Mbit).
pub fn partially_heterogeneous() -> Platform {
    let mut procs = table1_procs();
    for p in &mut procs {
        p.segment = 0;
    }
    let n = procs.len();
    let links = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0.0 } else { HOMOGENEOUS_LINK_MS })
                .collect()
        })
        .collect();
    Platform::new("partially-heterogeneous", procs, links)
}

/// The **partially homogeneous** network: 16 identical workstations
/// (`w = 0.0131`), but interconnected by the heterogeneous Table 2
/// network (four segments, serial inter-segment links).
pub fn partially_homogeneous() -> Platform {
    let segments: Vec<usize> = TABLE1.iter().map(|&(_, _, _, _, s)| s).collect();
    let procs: Vec<ProcessorSpec> = segments
        .iter()
        .enumerate()
        .map(|(i, &seg)| ProcessorSpec {
            name: format!("p{}", i + 1),
            arch: "Linux AMD Athlon",
            cycle_time: HOMOGENEOUS_CYCLE_TIME,
            memory_mb: 2048,
            cache_kb: 1024,
            segment: seg,
            device: None,
        })
        .collect();
    Platform::new("partially-homogeneous", procs, table2_links(&segments))
}

/// All four 16-node evaluation networks, in the order of the paper's
/// Table 5 columns.
pub fn four_networks() -> Vec<Platform> {
    vec![
        fully_heterogeneous(),
        fully_homogeneous(),
        partially_heterogeneous(),
        partially_homogeneous(),
    ]
}

/// Thunderhead-like Beowulf cluster: `p` identical nodes (dual 2.4 GHz
/// Xeon era, modeled at the homogeneous cycle-time), 1 GB memory,
/// interconnected by a Myrinet-class fabric (2 Gbit/s ≈ 0.5 ms per
/// megabit), one switched segment.
pub fn thunderhead(p: usize) -> Platform {
    Platform::uniform("thunderhead", p, HOMOGENEOUS_CYCLE_TIME, 1024, 0.5).with_msg_latency(20.0e-6)
    // Myrinet-class latency
}

/// The processor counts of the paper's Table 8 / Figure 2 sweep.
pub const THUNDERHEAD_SWEEP: [usize; 9] = [1, 4, 16, 36, 64, 100, 144, 196, 256];

/// Deterministically generates a random heterogeneous platform: `p`
/// processors with cycle-times log-uniform in
/// `[fastest_cycle, slowest_cycle]`, grouped into `segments` switched
/// segments joined by serial links 2–8× slower than the intra-segment
/// capacity. Useful for stress-testing schedulers beyond the paper's
/// fixed Tables 1–2 (used by the property suite).
///
/// # Panics
/// Panics when `p == 0`, `segments == 0` or the cycle-time bounds are
/// not positive and ordered.
pub fn random_heterogeneous(
    seed: u64,
    p: usize,
    segments: usize,
    fastest_cycle: f64,
    slowest_cycle: f64,
) -> Platform {
    assert!(p > 0 && segments > 0);
    assert!(0.0 < fastest_cycle && fastest_cycle <= slowest_cycle);
    // SplitMix64 stream: self-contained determinism without rand.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    let ln_lo = fastest_cycle.ln();
    let ln_hi = slowest_cycle.ln();
    let procs: Vec<ProcessorSpec> = (0..p)
        .map(|i| ProcessorSpec {
            name: format!("r{}", i + 1),
            arch: "randomly generated node",
            cycle_time: (ln_lo + (ln_hi - ln_lo) * next()).exp(),
            memory_mb: 512 + (next() * 3584.0) as u64,
            cache_kb: 512,
            segment: i % segments,
            device: None,
        })
        .collect();
    let intra: Vec<f64> = (0..segments).map(|_| 10.0 + 15.0 * next()).collect();
    // Symmetric inter-segment capacities.
    let mut inter = vec![vec![0.0; segments]; segments];
    for a in 0..segments {
        for b in (a + 1)..segments {
            let c = (intra[a].max(intra[b])) * (2.0 + 6.0 * next());
            inter[a][b] = c;
            inter[b][a] = c;
        }
    }
    let links = (0..p)
        .map(|i| {
            (0..p)
                .map(|j| {
                    if i == j {
                        0.0
                    } else if procs[i].segment == procs[j].segment {
                        intra[procs[i].segment]
                    } else {
                        inter[procs[i].segment][procs[j].segment]
                    }
                })
                .collect()
        })
        .collect();
    Platform::new(format!("random-het-{seed}"), procs, links)
}

/// The fully heterogeneous network with accelerators on half the nodes:
/// a commodity GPU on every `"Linux AMD Athlon"` workstation (p3 and
/// p11–p16 — 7 of 16 nodes) and an onboard FPGA on the
/// `"FreeBSD i386 Intel Pentium 4"` front-end (p1). Attachment is keyed
/// off the [`ProcessorSpec::arch`] label, the paper's "specialized
/// hardware on some nodes" scenario: identical CPUs and links to
/// [`fully_heterogeneous`], so any time difference is attributable to
/// offloading alone.
pub fn accel_heterogeneous() -> Platform {
    let procs: Vec<ProcessorSpec> = table1_procs()
        .into_iter()
        .map(|p| match p.arch {
            "Linux AMD Athlon" => p.with_device(DeviceSpec::commodity_gpu()),
            "FreeBSD i386 Intel Pentium 4" => p.with_device(DeviceSpec::edge_fpga()),
            _ => p,
        })
        .collect();
    let segments: Vec<usize> = procs.iter().map(|p| p.segment).collect();
    Platform::new("accel-heterogeneous", procs, table2_links(&segments))
}

/// A GPU-heavy cluster: `p` Thunderhead-class nodes, every one carrying
/// a commodity GPU. The kernel-offload best case — host CPUs only stage
/// data and run the unoffloadable phases — used by `BENCH_accel.json`'s
/// ≥ 2× kernel-time gate.
pub fn accel_thunderhead(p: usize) -> Platform {
    let base = thunderhead(p);
    let procs: Vec<ProcessorSpec> = base
        .procs()
        .iter()
        .map(|pr| pr.clone().with_device(DeviceSpec::commodity_gpu()))
        .collect();
    let links = links_of(&base);
    Platform::new("accel-thunderhead", procs, links).with_msg_latency(base.msg_latency_s())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_transcription() {
        let p = fully_heterogeneous();
        assert_eq!(p.num_procs(), 16);
        assert_eq!(p.proc(0).cycle_time, 0.0058); // p1
        assert_eq!(p.proc(2).cycle_time, 0.0026); // p3, the fastest
        assert_eq!(p.proc(2).memory_mb, 7748);
        assert_eq!(p.proc(9).cycle_time, 0.0451); // p10, the UltraSparc
        assert_eq!(p.proc(9).cache_kb, 2048);
        for i in 10..16 {
            assert_eq!(p.proc(i).cycle_time, 0.0131); // p11-p16
        }
    }

    #[test]
    fn table2_transcription() {
        let p = fully_heterogeneous();
        // Intra-segment values (diagonal blocks of Table 2).
        assert_eq!(p.link_ms_per_mbit(0, 1), 19.26); // within s1
        assert_eq!(p.link_ms_per_mbit(4, 5), 17.65); // within s2
        assert_eq!(p.link_ms_per_mbit(8, 9), 16.38); // within s3
        assert_eq!(p.link_ms_per_mbit(10, 15), 14.05); // within s4
                                                       // Inter-segment values.
        assert_eq!(p.link_ms_per_mbit(0, 4), 48.31); // s1-s2
        assert_eq!(p.link_ms_per_mbit(0, 8), 96.62); // s1-s3
        assert_eq!(p.link_ms_per_mbit(0, 10), 154.76); // s1-s4
        assert_eq!(p.link_ms_per_mbit(4, 8), 48.31); // s2-s3
        assert_eq!(p.link_ms_per_mbit(4, 10), 106.45); // s2-s4
        assert_eq!(p.link_ms_per_mbit(8, 10), 58.14); // s3-s4
    }

    #[test]
    fn segment_assignment() {
        let p = fully_heterogeneous();
        assert_eq!(p.segment_of(0), 0);
        assert_eq!(p.segment_of(3), 0);
        assert_eq!(p.segment_of(4), 1);
        assert_eq!(p.segment_of(7), 1);
        assert_eq!(p.segment_of(8), 2);
        assert_eq!(p.segment_of(9), 2);
        assert_eq!(p.segment_of(10), 3);
        assert_eq!(p.segment_of(15), 3);
    }

    #[test]
    fn four_network_characters() {
        let fhet = fully_heterogeneous();
        assert!(!fhet.is_compute_homogeneous());
        assert!(!fhet.is_network_homogeneous());

        let fhom = fully_homogeneous();
        assert!(fhom.is_compute_homogeneous());
        assert!(fhom.is_network_homogeneous());

        let phet = partially_heterogeneous();
        assert!(!phet.is_compute_homogeneous());
        assert!(phet.is_network_homogeneous());

        let phom = partially_homogeneous();
        assert!(phom.is_compute_homogeneous());
        assert!(!phom.is_network_homogeneous());
    }

    #[test]
    fn thunderhead_scales() {
        let t = thunderhead(256);
        assert_eq!(t.num_procs(), 256);
        assert!(t.is_compute_homogeneous());
        assert_eq!(t.proc(0).memory_mb, 1024);
        // Myrinet is much faster than the workstation LANs.
        assert!(t.link_ms_per_mbit(0, 1) < HOMOGENEOUS_LINK_MS / 10.0);
    }

    #[test]
    fn accel_preset_attaches_devices_by_arch() {
        use crate::accel::DeviceKind;
        let p = accel_heterogeneous();
        assert_eq!(p.num_procs(), 16);
        let mut gpus = 0;
        let mut fpgas = 0;
        for (i, proc) in p.procs().iter().enumerate() {
            match proc.arch {
                "Linux AMD Athlon" => {
                    let d = proc.device.expect("Athlon nodes carry a GPU");
                    assert_eq!(d.kind, DeviceKind::Gpu);
                    gpus += 1;
                    let _ = i;
                }
                "FreeBSD i386 Intel Pentium 4" => {
                    let d = proc.device.expect("the Pentium front-end carries an FPGA");
                    assert_eq!(d.kind, DeviceKind::Fpga);
                    fpgas += 1;
                }
                _ => assert!(proc.device.is_none(), "only keyed archs get devices"),
            }
        }
        assert_eq!((gpus, fpgas), (7, 1));
        // CPUs and links are identical to the device-free network.
        let base = fully_heterogeneous();
        for i in 0..16 {
            assert_eq!(p.proc(i).cycle_time, base.proc(i).cycle_time);
            for j in 0..16 {
                assert_eq!(p.link_ms_per_mbit(i, j), base.link_ms_per_mbit(i, j));
            }
        }
    }

    #[test]
    fn accel_thunderhead_is_gpu_everywhere() {
        use crate::accel::DeviceKind;
        let p = accel_thunderhead(16);
        assert_eq!(p.num_procs(), 16);
        for proc in p.procs() {
            assert_eq!(proc.device.map(|d| d.kind), Some(DeviceKind::Gpu));
        }
        let base = thunderhead(16);
        assert_eq!(p.msg_latency_s(), base.msg_latency_s());
        assert_eq!(p.link_ms_per_mbit(0, 1), base.link_ms_per_mbit(0, 1));
    }

    #[test]
    fn random_platform_is_valid_and_deterministic() {
        let a = random_heterogeneous(42, 12, 3, 0.002, 0.05);
        let b = random_heterogeneous(42, 12, 3, 0.002, 0.05);
        assert_eq!(a, b, "same seed must give the same platform");
        let c = random_heterogeneous(43, 12, 3, 0.002, 0.05);
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.num_procs(), 12);
        for i in 0..12 {
            let w = a.proc(i).cycle_time;
            assert!((0.002..=0.05).contains(&w), "cycle time {w}");
            assert!(a.segment_of(i) < 3);
        }
        // Inter-segment links are slower than intra-segment ones.
        let intra = a.link_ms_per_mbit(0, 3); // both segment 0
        let inter = a.link_ms_per_mbit(0, 1); // segments 0 and 1
        assert!(inter > intra);
    }

    #[test]
    fn speed_ordering_matches_table1() {
        // p3 (Athlon, 0.0026) is fastest; p10 (UltraSparc) slowest.
        let p = fully_heterogeneous();
        let speeds = p.relative_speeds();
        let max_idx = speeds
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let min_idx = speeds
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 2);
        assert_eq!(min_idx, 9);
    }
}
