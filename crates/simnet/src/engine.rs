//! The message-passing runtime.
//!
//! [`Engine::run`] spawns one OS thread per platform processor and hands
//! each a [`Ctx`]: its rank, a virtual-time ledger, and mailboxes to every
//! other rank (per-pair FIFO channels, so messages between a pair arrive
//! in send order — MPI's ordering guarantee). The API mirrors the MPI
//! subset the paper's algorithms use: [`Ctx::send`] / [`Ctx::recv`] plus
//! the collectives in [`crate::comm`].
//!
//! **Virtual time.** Computation is charged explicitly via
//! [`Ctx::compute_par`] / [`Ctx::compute_seq`] in megaflops; the engine
//! converts using the processor's cycle-time. Message timing follows the
//! platform's link matrix with serial inter-segment contention; see
//! [`crate::contention`] for the determinism argument.
//!
//! **Failure.** Failures are structured, not process-aborting. A rank
//! that panics — or crashes on schedule under a [`FaultPlan`] — is
//! unwound by the engine, which records a [`RankFailure`] in the
//! [`RunReport`] and sends a trailing *gone* marker to every peer over
//! the ordinary FIFO channels (so all messages sent before the failure
//! still arrive first). A peer blocked in [`Ctx::recv`] on a failed rank
//! unwinds in turn (cause `PeerLost`); a peer using
//! [`Ctx::recv_deadline`] instead *observes* the failure as a
//! [`RecvError::Failed`] value and can re-plan — the hook fault-tolerant
//! schedulers build on. Crash instants, slowdown dilation and link fault
//! windows are all functions of virtual time only, so faulty runs are
//! exactly as deterministic as healthy ones.

use crate::clock::{Phase, TimeLedger};
use crate::contention::InterSegmentLinks;
use crate::faults::{FailureCause, FaultPlan, RankFailure, RecvError};
use crate::platform::Platform;
use crate::report::RunReport;
use crate::trace::{Trace, TraceEvent, TraceKind};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;

type TraceSink = Option<Arc<Mutex<Vec<TraceEvent>>>>;

/// Types that can travel through the engine: anything sendable that can
/// report its wire size in bits (the paper's message-cost unit).
pub trait Wire: Send + 'static {
    /// Serialized size of this message in bits.
    fn size_bits(&self) -> u64;

    /// Bits a host-side `clone()` of this message deep-copies (heap
    /// payload only). Defaults to [`Wire::size_bits`], which is correct
    /// for owned buffers; shared payloads (`Arc`-backed messages, plain
    /// scalars) override to `0` because cloning them allocates nothing.
    ///
    /// This feeds the deterministic copy-telemetry counters
    /// ([`crate::report::CopyStats`]) only — it never participates in
    /// virtual-time charging, which always uses [`Wire::size_bits`].
    fn deep_copy_bits(&self) -> u64 {
        self.size_bits()
    }
}

/// A `Vec` wrapper implementing [`Wire`] with `len × size_of::<T>() × 8`
/// bits. Convenient for shipping raw numeric payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct WireVec<T>(pub Vec<T>);

impl<T: Send + 'static> Wire for WireVec<T> {
    fn size_bits(&self) -> u64 {
        (self.0.len() * std::mem::size_of::<T>() * 8) as u64
    }
}

macro_rules! impl_wire_fixed {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn size_bits(&self) -> u64 {
                (std::mem::size_of::<$t>() * 8) as u64
            }

            fn deep_copy_bits(&self) -> u64 {
                0 // plain scalar: cloning allocates nothing
            }
        }
    )*};
}

impl_wire_fixed!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

impl Wire for () {
    fn size_bits(&self) -> u64 {
        0
    }
}

impl<A: Send + 'static, B: Send + 'static> Wire for (A, B) {
    fn size_bits(&self) -> u64 {
        (std::mem::size_of::<(A, B)>() * 8) as u64
    }
}

/// Shared-payload wire messages: an `Arc<M>` travels with the wire size
/// of its pointee — the *transfer* cost model is unchanged — while its
/// `clone()` is a refcount bump, so [`Wire::deep_copy_bits`] is `0`.
/// This is the zero-copy building block: fan-out relays that clone an
/// `Arc`-backed payload per child copy pointer-width state, not the
/// payload.
impl<M: Wire + Sync> Wire for Arc<M> {
    fn size_bits(&self) -> u64 {
        (**self).size_bits()
    }

    fn deep_copy_bits(&self) -> u64 {
        0 // refcount bump, no payload copy
    }
}

/// Shared numeric slabs (`Arc<[T]>`): wire size is `len × size_of::<T>()
/// × 8` bits, exactly like [`WireVec`]; cloning deep-copies nothing.
impl<T: Send + Sync + 'static> Wire for Arc<[T]> {
    fn size_bits(&self) -> u64 {
        (self.len() * std::mem::size_of::<T>() * 8) as u64
    }

    fn deep_copy_bits(&self) -> u64 {
        0
    }
}

/// Engine configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommConfig {
    /// Per-message sender-side software overhead in seconds (MPI call +
    /// protocol latency). The transfer itself is DMA-style: it occupies
    /// the link, not the sending CPU. [`Engine::new`] initialises this
    /// from the platform's own latency.
    pub latency_s: f64,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            latency_s: crate::platform::DEFAULT_MSG_LATENCY_S,
        }
    }
}

/// In-flight message.
struct Envelope<M> {
    sent_at: f64,
    /// Set when the sender (the root) already reserved the link.
    arrives_at: Option<f64>,
    transfer_secs: f64,
    /// Seconds the transfer queued behind earlier link reservations
    /// (known at send time only on the root-resolved path; worker
    /// senders leave `0.0` and the receiver fills it in on resolve).
    queued: f64,
    payload: M,
}

/// What actually travels on a channel: a message, or a trailing marker
/// the engine sends when the source rank leaves the run (cleanly or
/// not). FIFO ordering guarantees the marker trails every real message.
enum Packet<M> {
    Msg(Envelope<M>),
    Gone {
        /// Source rank's virtual clock when it left.
        at: f64,
        /// `None`: clean exit. `Some`: why the rank failed.
        failure: Option<FailureCause>,
    },
}

/// A packet whose arrival time has been resolved (link reservation done
/// exactly once, at first peek, in the receiver's program order).
enum Stashed<M> {
    Msg {
        arrival: f64,
        transfer_secs: f64,
        /// Sender's virtual clock at injection (profiling provenance).
        sent_at: f64,
        /// Link-queueing delay the transfer paid (profiling provenance).
        queued: f64,
        payload: M,
    },
    Gone {
        at: f64,
        failure: Option<FailureCause>,
    },
}

/// Engine-internal unwind payload: this rank hit its scheduled crash.
struct CrashSignal;

/// Engine-internal unwind payload: a peer this rank depended on failed.
struct PeerFailedSignal {
    peer: usize,
}

/// Suppresses the default "thread panicked" stderr noise for the
/// engine's own control-flow unwinds; real panics still print.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.downcast_ref::<CrashSignal>().is_some()
                || payload.downcast_ref::<PeerFailedSignal>().is_some()
            {
                return;
            }
            prev(info);
        }));
    });
}

/// The per-rank execution context handed to the program closure.
pub struct Ctx<M: Wire> {
    rank: usize,
    platform: Arc<Platform>,
    config: CommConfig,
    links: Arc<InterSegmentLinks>,
    faults: Arc<FaultPlan>,
    /// This rank's scheduled crash time (`∞` when none).
    crash_at: f64,
    ledger: TimeLedger,
    txs: Vec<Sender<Packet<M>>>,
    rxs: Vec<Option<Receiver<Packet<M>>>>,
    /// Per-source stash for peeked-but-undelivered packets
    /// (deadline misses and permanent failure markers).
    pending: Vec<Option<Stashed<M>>>,
    /// Collective algorithm choices made on this rank (see
    /// [`crate::coll`]); the root's log lands in
    /// [`RunReport::collectives`].
    coll_log: Vec<crate::coll::CollectiveChoice>,
    /// Membership epoch transitions recorded on this rank (see
    /// [`Ctx::mark_epoch`]); the root's log lands in
    /// [`RunReport::epochs`].
    epoch_log: Vec<crate::report::EpochTransition>,
    /// Host-side copy telemetry for this rank's collective fan-outs;
    /// summed over ranks into [`RunReport::copies`].
    copies: crate::report::CopyStats,
    /// Accelerator attached to this rank's processor, if any.
    device: Option<crate::accel::DeviceSpec>,
    /// Deterministic offload telemetry for this rank; lands per rank in
    /// [`RunReport::offloads`].
    offload_stats: crate::accel::OffloadStats,
    trace: TraceSink,
}

impl<M: Wire> Ctx<M> {
    #[inline]
    fn record(&self, start: f64, kind: TraceKind) {
        if let Some(sink) = &self.trace {
            sink.lock().push(TraceEvent {
                rank: self.rank,
                start,
                end: self.ledger.now,
                kind,
            });
        }
    }

    /// Unwinds this rank at its scheduled crash instant.
    #[cold]
    fn die(&mut self) -> ! {
        if self.ledger.now < self.crash_at {
            self.ledger.receive(self.crash_at, 0.0); // idle until the crash
        }
        self.record(self.ledger.now, TraceKind::Crash);
        std::panic::panic_any(CrashSignal);
    }

    /// Dies if this rank's clock has already reached its crash time.
    #[inline]
    fn check_crashed(&mut self) {
        if self.ledger.now >= self.crash_at {
            self.die();
        }
    }

    fn advance_compute(&mut self, mflops: f64, phase: Phase, kind: TraceKind) {
        let secs = mflops * self.platform.proc(self.rank).cycle_time;
        self.advance_secs(secs, phase, kind);
    }

    /// Charges `secs` of nominal busy time (host or device execution),
    /// dilated by the fault plan and truncated at this rank's crash
    /// instant. Returns the actual elapsed virtual span.
    fn advance_secs(&mut self, secs: f64, phase: Phase, kind: TraceKind) -> f64 {
        self.check_crashed();
        let start = self.ledger.now;
        let end = self.faults.dilate(self.rank, start, secs);
        if end >= self.crash_at {
            // The crash lands mid-computation: charge the truncated span
            // and unwind.
            self.ledger.compute(self.crash_at - start, phase);
            self.record(start, kind);
            self.die();
        }
        self.ledger.compute(end - start, phase);
        self.record(start, kind);
        end - start
    }

    /// Resolves a raw packet's arrival time. The root resolves link
    /// reservations here, in its own program order — which is what keeps
    /// contention timestamps deterministic (see [`crate::contention`]).
    fn resolve(&mut self, src: usize, pkt: Packet<M>) -> Stashed<M> {
        match pkt {
            Packet::Gone { at, failure } => Stashed::Gone { at, failure },
            Packet::Msg(env) => {
                let (arrival, transfer_secs, queued) = match env.arrives_at {
                    Some(a) => (a, env.transfer_secs, env.queued),
                    None => {
                        let (seg_src, seg_dst) = (
                            self.platform.segment_of(src),
                            self.platform.segment_of(self.rank),
                        );
                        let (earliest, dur) = self.faults.adjust_transfer(
                            seg_src,
                            seg_dst,
                            env.sent_at,
                            env.transfer_secs,
                        );
                        if self.rank == 0 {
                            let start = self.links.reserve(seg_src, seg_dst, earliest, dur);
                            (start + dur, dur, start - earliest)
                        } else {
                            // Worker↔worker: raw transfer, no queueing
                            // (documented approximation; only the halo
                            // ablation uses this).
                            (earliest + dur, dur, 0.0)
                        }
                    }
                };
                Stashed::Msg {
                    arrival,
                    transfer_secs,
                    sent_at: env.sent_at,
                    queued,
                    payload: env.payload,
                }
            }
        }
    }

    /// Next packet from `src`: the stashed one if present, else a
    /// blocking (wall-clock) channel read.
    fn next_packet(&mut self, src: usize) -> Stashed<M> {
        if let Some(p) = self.pending[src].take() {
            return p;
        }
        let rx = self.rxs[src]
            .as_ref()
            .expect("recv: receiver already moved");
        match rx.recv() {
            Ok(pkt) => self.resolve(src, pkt),
            // Channel disconnect without a Gone marker can only happen if
            // the peer thread was torn down outside the engine's control.
            Err(_) => Stashed::Gone {
                at: self.ledger.now,
                failure: Some(FailureCause::PeerLost { peer: src }),
            },
        }
    }
}

impl<M: Wire> Ctx<M> {
    /// This rank's id (`0` is the root/master).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the run.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.platform.num_procs()
    }

    /// `true` for rank 0.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// The platform this run executes on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The fault plan this run executes under (empty when none was
    /// attached). Schedulers use it to derive *analytic* bounds — e.g.
    /// the worst-case completion of a batch on a merely-slowed worker
    /// via [`FaultPlan::dilate`] — from the same plan the engine
    /// charges, keeping predictions and measurements consistent.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn elapsed(&self) -> f64 {
        self.ledger.now
    }

    /// Read-only view of this rank's time ledger.
    pub fn ledger(&self) -> &TimeLedger {
        &self.ledger
    }

    /// Charges `mflops` megaflops of **parallel-phase** computation at
    /// this processor's cycle-time.
    pub fn compute_par(&mut self, mflops: f64) {
        self.advance_compute(mflops, Phase::Par, TraceKind::ComputePar);
    }

    /// Charges `mflops` megaflops of **sequential-phase** computation
    /// (root-only work while the rest of the system idles).
    pub fn compute_seq(&mut self, mflops: f64) {
        self.advance_compute(mflops, Phase::Seq, TraceKind::ComputeSeq);
    }

    /// Sends `payload` to `dst`, charging the wire size reported by the
    /// payload.
    pub fn send(&mut self, dst: usize, payload: M) {
        let bits = payload.size_bits();
        self.send_bits(dst, payload, bits);
    }

    /// Sends `payload` to `dst` **free of transfer cost** (only the
    /// per-message latency applies). Used for `ScatterMode::Free`
    /// data staging — see DESIGN.md.
    pub fn send_free(&mut self, dst: usize, payload: M) {
        self.send_bits(dst, payload, 0);
    }

    /// Sends `payload` to `dst`, charging an explicit wire size.
    ///
    /// Sends to a rank that has already failed are silently dropped on
    /// the receiving side (the link time is still charged), mirroring a
    /// network that accepts frames for a dead host.
    ///
    /// # Panics
    /// Panics on self-sends and out-of-range destinations.
    pub fn send_bits(&mut self, dst: usize, payload: M, bits: u64) {
        assert!(dst < self.num_ranks(), "send: rank {dst} out of range");
        assert_ne!(dst, self.rank, "send: self-send not supported");
        self.check_crashed();
        let trace_start = self.ledger.now;
        self.ledger.send_overhead(self.config.latency_s);
        self.record(trace_start, TraceKind::Send { dst });
        let transfer_secs = self.platform.transfer_secs(self.rank, dst, bits);
        let sent_at = self.ledger.now;
        // Root-side link reservation keeps virtual timestamps
        // deterministic (root program order); see crate::contention.
        let (arrives_at, transfer_secs, queued) = if self.rank == 0 {
            let (earliest, dur) = self.faults.adjust_transfer(
                self.platform.segment_of(self.rank),
                self.platform.segment_of(dst),
                sent_at,
                transfer_secs,
            );
            let start = self.links.reserve(
                self.platform.segment_of(self.rank),
                self.platform.segment_of(dst),
                earliest,
                dur,
            );
            (Some(start + dur), dur, start - earliest)
        } else {
            (None, transfer_secs, 0.0)
        };
        let env = Envelope {
            sent_at,
            arrives_at,
            transfer_secs,
            queued,
            payload,
        };
        // A disconnected receiver means the peer already left the run;
        // the message is dropped, exactly like frames to a dead host.
        let _ = self.txs[dst].send(Packet::Msg(env));
    }

    /// Receives the next message from `src` (blocking), advancing this
    /// rank's virtual clock to the message's arrival time.
    ///
    /// # Panics
    /// Panics on self-receives and out-of-range sources. If `src` left
    /// the run without sending, this rank is unwound by the engine and
    /// reported as failed with cause `PeerLost` — use
    /// [`Ctx::recv_deadline`] to observe peer failure as a value
    /// instead.
    pub fn recv(&mut self, src: usize) -> M {
        assert!(src < self.num_ranks(), "recv: rank {src} out of range");
        assert_ne!(src, self.rank, "recv: self-receive not supported");
        self.check_crashed();
        match self.next_packet(src) {
            Stashed::Msg {
                arrival,
                transfer_secs,
                sent_at,
                queued,
                payload,
            } => {
                if arrival >= self.crash_at {
                    // Died waiting for this message.
                    self.pending[src] = Some(Stashed::Msg {
                        arrival,
                        transfer_secs,
                        sent_at,
                        queued,
                        payload,
                    });
                    self.die();
                }
                let trace_start = self.ledger.now;
                self.ledger.receive(arrival, transfer_secs);
                self.record(
                    trace_start,
                    TraceKind::Recv {
                        src,
                        delivered: true,
                        sent_at,
                        transfer: transfer_secs,
                        queued,
                    },
                );
                payload
            }
            Stashed::Gone { at, failure } => {
                // The marker is permanent: stash it back so later
                // receives observe the same state.
                self.pending[src] = Some(Stashed::Gone { at, failure });
                if at >= self.crash_at {
                    self.die();
                }
                self.ledger.receive(at, 0.0); // idle until the news lands
                std::panic::panic_any(PeerFailedSignal { peer: src });
            }
        }
    }

    /// Receives the next message from `src` **if it arrives by virtual
    /// time `deadline`**; otherwise advances this rank's clock to the
    /// deadline (idle time in the [`TimeLedger`]) and reports why:
    ///
    /// * `Err(Timeout)` — no message arrived by the deadline (a message
    ///   arriving later stays queued for the next receive). A deadline
    ///   already in the past polls without advancing time.
    /// * `Err(Failed)` — `src` failed at or before the deadline; the
    ///   clock advances only to the failure instant. The condition is
    ///   permanent: every later receive from `src` reports it again.
    ///
    /// A message arriving *exactly at* the deadline is delivered.
    ///
    /// This is the detection primitive for fault-tolerant masters: poll
    /// workers with a deadline, observe `Failed`, re-plan the surviving
    /// partition.
    pub fn recv_deadline(&mut self, src: usize, deadline: f64) -> Result<M, RecvError> {
        assert!(src < self.num_ranks(), "recv: rank {src} out of range");
        assert_ne!(src, self.rank, "recv: self-receive not supported");
        self.check_crashed();
        let undelivered = |src: usize| TraceKind::Recv {
            src,
            delivered: false,
            sent_at: 0.0,
            transfer: 0.0,
            queued: 0.0,
        };
        match self.next_packet(src) {
            Stashed::Msg {
                arrival,
                transfer_secs,
                sent_at,
                queued,
                payload,
            } => {
                if arrival <= deadline && arrival < self.crash_at {
                    let trace_start = self.ledger.now;
                    self.ledger.receive(arrival, transfer_secs);
                    self.record(
                        trace_start,
                        TraceKind::Recv {
                            src,
                            delivered: true,
                            sent_at,
                            transfer: transfer_secs,
                            queued,
                        },
                    );
                    return Ok(payload);
                }
                self.pending[src] = Some(Stashed::Msg {
                    arrival,
                    transfer_secs,
                    sent_at,
                    queued,
                    payload,
                });
                if deadline >= self.crash_at {
                    self.die();
                }
                let trace_start = self.ledger.now;
                self.ledger.receive(deadline, 0.0);
                self.record(trace_start, undelivered(src));
                Err(RecvError::Timeout { deadline })
            }
            Stashed::Gone { at, failure } => {
                self.pending[src] = Some(Stashed::Gone {
                    at,
                    failure: failure.clone(),
                });
                match failure {
                    Some(cause) if at <= deadline => {
                        if at >= self.crash_at {
                            self.die();
                        }
                        let trace_start = self.ledger.now;
                        self.ledger.receive(at, 0.0);
                        self.record(trace_start, undelivered(src));
                        Err(RecvError::Failed(RankFailure {
                            rank: src,
                            at,
                            cause,
                        }))
                    }
                    _ => {
                        // Clean exit, or a failure we can't know about
                        // yet: wait out the deadline.
                        if deadline >= self.crash_at {
                            self.die();
                        }
                        let trace_start = self.ledger.now;
                        self.ledger.receive(deadline, 0.0);
                        self.record(trace_start, undelivered(src));
                        Err(RecvError::Timeout { deadline })
                    }
                }
            }
        }
    }

    /// Advances this rank's clock to at least `t` (idle wait). Used by
    /// phase-synchronisation helpers.
    pub fn wait_until(&mut self, t: f64) {
        if t >= self.crash_at {
            self.die();
        }
        self.ledger.receive(t, 0.0);
    }

    /// Records a recovery span (re-planning after losing rank `lost`)
    /// from `start` to the current virtual time in the run's trace.
    /// Used by fault-tolerant schedulers for observability.
    pub fn mark_recovery(&mut self, start: f64, lost: usize) {
        self.record(start, TraceKind::Recovery { lost });
    }

    /// Records a membership epoch transition at the current virtual
    /// time: this rank's [`crate::coll::Membership`] view observed the
    /// failure of `failed` and advanced to `epoch`, leaving `survivors`
    /// ranks alive. Emits a zero-length trace marker and appends to the
    /// rank's epoch log (the root's log lands in
    /// [`RunReport::epochs`]).
    pub fn mark_epoch(&mut self, epoch: u64, failed: usize, survivors: usize) {
        self.record(self.ledger.now, TraceKind::EpochBump { epoch });
        self.epoch_log.push(crate::report::EpochTransition {
            epoch,
            at: self.ledger.now,
            failed,
            survivors,
        });
    }

    /// The per-message sender-side latency this run charges. The
    /// collectives' cost model ([`crate::coll::predict`]) replays it.
    pub(crate) fn msg_latency_s(&self) -> f64 {
        self.config.latency_s
    }

    /// Appends a collective algorithm decision to this rank's log.
    pub(crate) fn log_collective(&mut self, choice: crate::coll::CollectiveChoice) {
        self.coll_log.push(choice);
    }

    /// This rank's copy telemetry so far (see
    /// [`crate::report::CopyStats`]).
    pub fn copy_stats(&self) -> crate::report::CopyStats {
        self.copies
    }

    /// The accelerator attached to this rank's processor, if any
    /// (mirrors `platform.proc(rank).device`).
    pub fn device(&self) -> Option<&crate::accel::DeviceSpec> {
        self.device.as_ref()
    }

    /// This rank's offload telemetry so far (see
    /// [`crate::accel::OffloadStats`]).
    pub fn offload_stats(&self) -> &crate::accel::OffloadStats {
        &self.offload_stats
    }

    /// Executes one offload-eligible kernel chunk on this rank's
    /// accelerator, charging [`crate::accel::DeviceSpec::offload_secs`]
    /// (launch latency + H2D transfer + device compute + D2H transfer)
    /// of parallel-phase virtual time. Fault-plan slowdowns dilate the
    /// charge and a crash truncates it, exactly as for host compute.
    ///
    /// The *result* of the kernel is whatever the caller computed on the
    /// host threads — device execution is bit-identical by construction;
    /// only the time accounting differs.
    ///
    /// Falls back to [`Ctx::compute_par_tracked`] (host charging) when
    /// no device is attached, so callers need not branch.
    pub fn offload(&mut self, mflops: f64, bytes_h2d: u64, bytes_d2h: u64) {
        match self.device {
            Some(spec) => {
                let secs = spec.offload_secs(mflops, bytes_h2d, bytes_d2h);
                // Nominal sub-phase split for the profiler; the charged
                // total stays the single closed form `offload_secs`.
                let kind = TraceKind::Offload {
                    launch: spec.launch_latency_s,
                    h2d: bytes_h2d as f64 / (spec.h2d_gb_per_s * 1.0e9),
                    compute: mflops / spec.throughput_mflops,
                    d2h: bytes_d2h as f64 / (spec.d2h_gb_per_s * 1.0e9),
                };
                let elapsed = self.advance_secs(secs, Phase::Par, kind);
                self.offload_stats.launches += 1;
                self.offload_stats.bytes_h2d += bytes_h2d;
                self.offload_stats.bytes_d2h += bytes_d2h;
                self.offload_stats.device_ms += elapsed * 1.0e3;
            }
            None => self.compute_par_tracked(mflops),
        }
    }

    /// Charges an offload-eligible chunk on the host CPU (same cost as
    /// [`Ctx::compute_par`]) and records it in the `host_ms` telemetry,
    /// so policy comparisons can see the road not taken.
    pub fn compute_par_tracked(&mut self, mflops: f64) {
        let secs = mflops * self.platform.proc(self.rank).cycle_time;
        let elapsed = self.advance_secs(secs, Phase::Par, TraceKind::ComputePar);
        self.offload_stats.host_ms += elapsed * 1.0e3;
    }

    /// Clones `payload` on a collective hot path, charging its
    /// [`Wire::deep_copy_bits`] to the telemetry counters. All fan-out
    /// clones in [`crate::coll`] go through here, which is what makes
    /// the counters deterministic: they count *schedule* clone sites,
    /// never racy `Arc` refcount observations.
    pub(crate) fn clone_counted(&mut self, payload: &M) -> M
    where
        M: Clone,
    {
        let deep = payload.deep_copy_bits();
        self.copies.bytes_deep_copied += deep / 8;
        if deep > 0 {
            self.copies.allocs_on_hot_path += 1;
        }
        payload.clone()
    }

    /// Records one fan-out send against the owned-payload baseline: the
    /// bytes the pre-zero-copy implementation would have deep-copied
    /// here (one full payload clone per child), whether the actual send
    /// clones or moves.
    pub(crate) fn note_fanout_send(&mut self, payload: &M) {
        self.copies.bytes_owned_baseline += payload.size_bits() / 8;
    }
}

/// The simulator: a platform plus engine configuration.
#[derive(Debug, Clone)]
pub struct Engine {
    platform: Arc<Platform>,
    config: CommConfig,
    faults: Arc<FaultPlan>,
    /// Explicit data-parallel width per rank thread; `None` = automatic
    /// (`host cores / ranks`, clamped to at least 1).
    threads_per_rank: Option<usize>,
    /// When set, [`Engine::run`] records a trace and attaches a
    /// [`crate::prof::RunProfile`] to the report.
    profiling: bool,
}

impl Engine {
    /// Creates an engine over a platform, adopting the platform's
    /// message latency.
    pub fn new(platform: Platform) -> Self {
        let config = CommConfig {
            latency_s: platform.msg_latency_s(),
        };
        Engine {
            platform: Arc::new(platform),
            config,
            faults: Arc::new(FaultPlan::new()),
            threads_per_rank: None,
            profiling: false,
        }
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(platform: Platform, config: CommConfig) -> Self {
        Engine {
            platform: Arc::new(platform),
            config,
            faults: Arc::new(FaultPlan::new()),
            threads_per_rank: None,
            profiling: false,
        }
    }

    /// Attaches a deterministic fault plan to every subsequent run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Arc::new(plan);
        self
    }

    /// Enables (or disables) post-run profiling: every subsequent
    /// [`Engine::run`] records a trace and attaches a
    /// [`crate::prof::RunProfile`] to [`RunReport::profile`]. Profiling
    /// is pure observability — virtual clocks, results and every other
    /// report field are bit-identical to an unprofiled run.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Whether profiling is enabled on this engine.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// The fault plan attached to this engine (empty by default).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Sets the data-parallel thread budget each rank installs for its
    /// kernels (the shared `rayon` pool width per rank thread). `0`
    /// restores the automatic default — `host cores / ranks`, clamped
    /// to at least 1 — which keeps `ranks × threads_per_rank ≤ cores`
    /// so real compute never oversubscribes the host.
    ///
    /// The setting affects **wall-clock speed only**: every kernel in
    /// this workspace is bit-deterministic across thread counts, and
    /// virtual-time charging is analytic, so reports are identical for
    /// any value (asserted by the `parallel_invariance` tests).
    pub fn with_threads_per_rank(mut self, threads: usize) -> Self {
        self.threads_per_rank = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// The data-parallel width each rank will install: the explicit
    /// [`Self::with_threads_per_rank`] value, or the automatic default.
    pub fn threads_per_rank(&self) -> usize {
        self.threads_per_rank.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            (cores / self.platform.num_procs()).max(1)
        })
    }

    /// The platform this engine simulates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Runs `program` on every rank concurrently and collects the report.
    ///
    /// The closure receives each rank's [`Ctx`]; its return value is
    /// collected into [`RunReport::results`] (indexed by rank). Ranks
    /// that fail — by panic or by scheduled crash — contribute `None`
    /// and a [`RankFailure`] entry in [`RunReport::failures`] instead of
    /// aborting the run.
    pub fn run<M, R, F>(&self, program: F) -> RunReport<R>
    where
        M: Wire,
        R: Send,
        F: Fn(&mut Ctx<M>) -> R + Sync,
    {
        if self.profiling {
            self.run_traced(program).0
        } else {
            self.run_inner(program, None)
        }
    }

    /// Runs `program` while recording a per-rank execution [`Trace`]
    /// (see [`crate::trace`]). The returned report always carries a
    /// [`crate::prof::RunProfile`] in [`RunReport::profile`], derived
    /// post-run from the trace and the per-rank clocks.
    pub fn run_traced<M, R, F>(&self, program: F) -> (RunReport<R>, Trace)
    where
        M: Wire,
        R: Send,
        F: Fn(&mut Ctx<M>) -> R + Sync,
    {
        let sink = Arc::new(Mutex::new(Vec::new()));
        let mut report = self.run_inner(program, Some(Arc::clone(&sink)));
        let mut trace = Trace {
            events: std::mem::take(&mut *sink.lock()),
        };
        trace.finalize();
        report.profile = Some(crate::prof::RunProfile::from_run(
            &self.platform,
            &report.ledgers,
            &trace,
        ));
        (report, trace)
    }

    fn run_inner<M, R, F>(&self, program: F, trace: TraceSink) -> RunReport<R>
    where
        M: Wire,
        R: Send,
        F: Fn(&mut Ctx<M>) -> R + Sync,
    {
        install_quiet_panic_hook();
        let p = self.platform.num_procs();
        // P×P channel matrix; [src][dst].
        let mut senders: Vec<Vec<Sender<Packet<M>>>> = Vec::with_capacity(p);
        let mut receivers: Vec<Vec<Option<Receiver<Packet<M>>>>> =
            (0..p).map(|_| Vec::with_capacity(p)).collect();
        for _src in 0..p {
            let mut row = Vec::with_capacity(p);
            for dst_mailboxes in receivers.iter_mut() {
                let (tx, rx) = unbounded();
                row.push(tx);
                dst_mailboxes.push(Some(rx));
            }
            senders.push(row);
        }
        let links = Arc::new(InterSegmentLinks::new());
        let width = self.threads_per_rank();

        type Outcome<R> = (
            TimeLedger,
            Vec<crate::coll::CollectiveChoice>,
            Vec<crate::report::EpochTransition>,
            crate::report::CopyStats,
            crate::accel::OffloadStats,
            Option<R>,
            Option<RankFailure>,
        );
        let mut outcomes: Vec<Option<Outcome<R>>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, (txs, rxs)) in senders.into_iter().zip(receivers).enumerate() {
                let platform = Arc::clone(&self.platform);
                let links = Arc::clone(&links);
                let faults = Arc::clone(&self.faults);
                let config = self.config;
                let program = &program;
                let trace = trace.clone();
                handles.push(scope.spawn(move || {
                    // Each rank installs a size-bounded kernel pool, so
                    // rank-level and data-level parallelism compose
                    // without oversubscription (ranks × width ≤ cores by
                    // default). Kernel results don't depend on the
                    // width, only wall-clock time does.
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(width)
                        .build()
                        .expect("engine: kernel pool");
                    let crash_at = faults.crash_time(rank).unwrap_or(f64::INFINITY);
                    let device = platform.proc(rank).device;
                    let mut ctx = Ctx {
                        rank,
                        platform,
                        config,
                        links,
                        faults,
                        crash_at,
                        ledger: TimeLedger::new(),
                        txs,
                        rxs,
                        pending: (0..p).map(|_| None).collect(),
                        coll_log: Vec::new(),
                        epoch_log: Vec::new(),
                        copies: crate::report::CopyStats::default(),
                        device,
                        offload_stats: crate::accel::OffloadStats::default(),
                        trace,
                    };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        pool.install(|| program(&mut ctx))
                    }));
                    let (result, failure) = match outcome {
                        Ok(r) => (Some(r), None),
                        Err(payload) => {
                            let cause = if payload.downcast_ref::<CrashSignal>().is_some() {
                                FailureCause::Crash
                            } else if let Some(pf) = payload.downcast_ref::<PeerFailedSignal>() {
                                FailureCause::PeerLost { peer: pf.peer }
                            } else if let Some(s) = payload.downcast_ref::<&'static str>() {
                                FailureCause::Panic((*s).to_string())
                            } else if let Some(s) = payload.downcast_ref::<String>() {
                                FailureCause::Panic(s.clone())
                            } else {
                                FailureCause::Panic("opaque panic payload".to_string())
                            };
                            let failure = RankFailure {
                                rank,
                                at: ctx.ledger.now,
                                cause,
                            };
                            (None, Some(failure))
                        }
                    };
                    // Trailing marker to every peer: FIFO guarantees it
                    // arrives after all real messages, so peers observe
                    // this rank's exit only once its mailbox is drained.
                    let gone_cause = failure.as_ref().map(|f| f.cause.clone());
                    let at = ctx.ledger.now;
                    for (dst, tx) in ctx.txs.iter().enumerate() {
                        if dst != rank {
                            let _ = tx.send(Packet::Gone {
                                at,
                                failure: gone_cause.clone(),
                            });
                        }
                    }
                    (
                        ctx.ledger,
                        std::mem::take(&mut ctx.coll_log),
                        std::mem::take(&mut ctx.epoch_log),
                        ctx.copies,
                        std::mem::take(&mut ctx.offload_stats),
                        result,
                        failure,
                    )
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(outcome) => outcomes[rank] = Some(outcome),
                    // The closure catches program panics; anything that
                    // still unwinds the thread is an engine bug.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let mut ledgers = Vec::with_capacity(p);
        let mut results = Vec::with_capacity(p);
        let mut failures = Vec::new();
        let mut collectives = Vec::new();
        let mut epochs = Vec::new();
        let mut copies = crate::report::CopyStats::default();
        let mut offloads = Vec::with_capacity(p);
        for (rank, o) in outcomes.into_iter().enumerate() {
            let (ledger, coll_log, epoch_log, rank_copies, rank_offloads, result, failure) =
                o.expect("engine: missing rank outcome");
            ledgers.push(ledger);
            results.push(result);
            copies.merge(rank_copies);
            offloads.push(rank_offloads);
            if rank == 0 {
                // Collective choices are resolved identically on every
                // rank; the root's log is the canonical record. Same for
                // epoch transitions: the coordinator's view is
                // authoritative.
                collectives = coll_log;
                epochs = epoch_log;
            }
            if let Some(f) = failure {
                failures.push(f);
            }
        }
        let mut report =
            RunReport::with_failures(self.platform.name().to_string(), ledgers, results, failures);
        report.collectives = collectives;
        report.epochs = epochs;
        report.copies = copies;
        report.offloads = offloads;
        report.ranks = self.platform.rank_summaries();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn two_rank_platform() -> Platform {
        Platform::uniform("t2", 2, 0.01, 1024, 10.0)
    }

    #[test]
    fn compute_cost_scales_with_cycle_time() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<()>| {
            ctx.compute_par(100.0); // 100 Mflop at 0.01 s/Mflop = 1 s
            ctx.elapsed()
        });
        assert!((report.result(0) - 1.0).abs() < 1e-12);
        assert!((report.result(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn message_timing_includes_transfer() {
        let engine = Engine::new(two_rank_platform());
        // 1 Mbit message over a 10 ms/Mbit link = 0.01 s transfer.
        let report = engine.run(|ctx: &mut Ctx<WireVec<u8>>| {
            if ctx.rank() == 1 {
                ctx.send(0, WireVec(vec![0u8; 125_000])); // 1 Mbit
                0.0
            } else {
                let _ = ctx.recv(1);
                ctx.elapsed()
            }
        });
        let expect = crate::platform::DEFAULT_MSG_LATENCY_S + 0.01; // latency + transfer
        assert!(
            (report.result(0) - expect).abs() < 1e-9,
            "got {}",
            report.result(0)
        );
    }

    #[test]
    fn send_free_skips_transfer_cost() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<WireVec<u8>>| {
            if ctx.rank() == 0 {
                ctx.send_free(1, WireVec(vec![0u8; 125_000]));
                0.0
            } else {
                let _ = ctx.recv(0);
                ctx.elapsed()
            }
        });
        // Only the sender's per-message latency moves time.
        assert!((report.result(1) - crate::platform::DEFAULT_MSG_LATENCY_S).abs() < 1e-9);
    }

    #[test]
    fn per_pair_fifo_ordering() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 0 {
                for i in 0..10u64 {
                    ctx.send(1, i);
                }
                Vec::new()
            } else {
                (0..10).map(|_| ctx.recv(0)).collect::<Vec<u64>>()
            }
        });
        assert_eq!(*report.result(1), (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn receiver_waits_for_slow_sender() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 1 {
                ctx.compute_par(500.0); // 5 s of work before sending
                ctx.send(0, 7);
            } else {
                let v = ctx.recv(1);
                assert_eq!(v, 7);
            }
            ctx.ledger().clone()
        });
        let root = report.result(0);
        assert!(root.now >= 5.0, "root must wait for the worker");
        assert!(root.idle > 4.9, "the wait is idle time");
    }

    #[test]
    fn intersegment_contention_serializes_root_sends() {
        // Two segments: root in seg 0, two workers in seg 1. Root sends
        // both workers a 1 Mbit message; the serial link forces the
        // second transfer to queue behind the first.
        let procs = vec![
            crate::platform::ProcessorSpec {
                name: "r".into(),
                arch: "x",
                cycle_time: 0.01,
                memory_mb: 1024,
                cache_kb: 0,
                segment: 0,
                device: None,
            },
            crate::platform::ProcessorSpec {
                name: "w1".into(),
                arch: "x",
                cycle_time: 0.01,
                memory_mb: 1024,
                cache_kb: 0,
                segment: 1,
                device: None,
            },
            crate::platform::ProcessorSpec {
                name: "w2".into(),
                arch: "x",
                cycle_time: 0.01,
                memory_mb: 1024,
                cache_kb: 0,
                segment: 1,
                device: None,
            },
        ];
        let links = vec![
            vec![0.0, 100.0, 100.0],
            vec![100.0, 0.0, 1.0],
            vec![100.0, 1.0, 0.0],
        ];
        let engine = Engine::new(Platform::new("seg", procs, links));
        let report = engine.run(|ctx: &mut Ctx<WireVec<u8>>| {
            if ctx.rank() == 0 {
                ctx.send(1, WireVec(vec![0u8; 125_000])); // 0.1 s transfer
                ctx.send(2, WireVec(vec![0u8; 125_000]));
                0.0
            } else {
                let _ = ctx.recv(0);
                ctx.elapsed()
            }
        });
        // First worker: ~latency + 0.1. Second: queued behind → ~+0.2.
        assert!(*report.result(1) < 0.15, "got {}", report.result(1));
        assert!(
            *report.result(2) > 0.2,
            "second transfer should queue: {}",
            report.result(2)
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let engine = Engine::new(crate::presets::fully_heterogeneous());
        let run = || {
            engine.run(|ctx: &mut Ctx<WireVec<f32>>| {
                if ctx.rank() == 0 {
                    let mut acc = 0.0;
                    for src in 1..ctx.num_ranks() {
                        let v = ctx.recv(src);
                        acc += v.0[0] as f64;
                    }
                    ctx.compute_seq(10.0);
                    (acc, ctx.elapsed())
                } else {
                    ctx.compute_par(50.0 * ctx.rank() as f64);
                    ctx.send(0, WireVec(vec![ctx.rank() as f32; 1000]));
                    (0.0, ctx.elapsed())
                }
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x, y, "virtual timestamps must be deterministic");
        }
        assert_eq!(a.total_time, b.total_time);
    }

    /// Regression test for the old abort path: a worker panic used to
    /// propagate out of [`Engine::run`] and kill the whole simulation.
    /// It now surfaces as structured [`RankFailure`]s in the report.
    #[test]
    fn worker_panic_is_structured_failure() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 1 {
                ctx.compute_par(100.0); // 1 s, so the failure has a time
                panic!("worker died");
            }
            ctx.recv(1)
        });
        assert_eq!(report.results[0], None);
        assert_eq!(report.results[1], None);
        assert_eq!(report.failures.len(), 2);
        let w = report.failure_of(1).expect("worker failure recorded");
        assert!((w.at - 1.0).abs() < 1e-12);
        assert_eq!(w.cause, FailureCause::Panic("worker died".to_string()));
        let r = report.failure_of(0).expect("root cascade recorded");
        assert_eq!(r.cause, FailureCause::PeerLost { peer: 1 });
        // The root learned of the death at the worker's failure time.
        assert!((r.at - 1.0).abs() < 1e-12);
    }

    #[test]
    fn planned_crash_truncates_compute() {
        let engine = Engine::new(two_rank_platform()).with_faults(FaultPlan::new().crash(1, 0.25));
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 1 {
                ctx.compute_par(100.0); // nominally 1 s — dies at 0.25
                unreachable!("rank 1 must crash mid-compute");
            }
            match ctx.recv_deadline(1, 10.0) {
                Err(RecvError::Failed(f)) => f.at,
                other => panic!("expected failure, got {other:?}"),
            }
        });
        assert!((report.result(0) - 0.25).abs() < 1e-12);
        let f = report.failure_of(1).expect("crash recorded");
        assert_eq!(f.cause, FailureCause::Crash);
        assert!((f.at - 0.25).abs() < 1e-12);
        assert!((report.ledgers[1].now - 0.25).abs() < 1e-12);
        // The crashed rank's partial work is on its ledger.
        assert!((report.ledgers[1].compute_par - 0.25).abs() < 1e-12);
    }

    #[test]
    fn crash_runs_are_deterministic() {
        let plan = FaultPlan::new().crash(2, 0.4).slowdown(1, 0.0, 10.0, 3.0);
        let engine = Engine::new(Platform::uniform("t4", 4, 0.01, 1024, 10.0)).with_faults(plan);
        let run = || {
            engine.run(|ctx: &mut Ctx<u64>| {
                if ctx.rank() == 0 {
                    let mut got = Vec::new();
                    for src in 1..ctx.num_ranks() {
                        got.push(ctx.recv_deadline(src, 5.0).ok());
                    }
                    (got, ctx.elapsed())
                } else {
                    ctx.compute_par(100.0);
                    ctx.send(0, ctx.rank() as u64);
                    (Vec::new(), ctx.elapsed())
                }
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical fault plans must give identical reports");
        assert_eq!(a.failures.len(), 1);
        assert_eq!(a.failures[0].rank, 2);
    }

    #[test]
    fn slowdown_dilates_compute_and_send_to_dead_peer_is_dropped() {
        let plan = FaultPlan::new().crash(1, 0.1).slowdown(0, 0.0, 100.0, 2.0);
        let engine = Engine::new(two_rank_platform()).with_faults(plan);
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 0 {
                ctx.compute_seq(100.0); // 1 s nominal → 2 s dilated
                ctx.send(1, 42); // rank 1 is long dead: dropped
                ctx.elapsed()
            } else {
                ctx.wait_until(5.0); // crosses crash at 0.1
                unreachable!()
            }
        });
        assert!(*report.result(0) > 2.0, "dilated: {}", report.result(0));
        assert!((report.ledgers[1].now - 0.1).abs() < 1e-12);
        assert_eq!(report.failures.len(), 1);
    }

    #[test]
    fn recv_deadline_delivers_on_time_and_times_out() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 1 {
                ctx.compute_par(100.0); // 1 s
                ctx.send(0, 9);
                (0, 0.0, 0.0)
            } else {
                // Arrival ≈ 1 s + latency + transfer; deadline 0.5 misses.
                let miss = ctx.recv_deadline(1, 0.5);
                assert!(matches!(miss, Err(RecvError::Timeout { .. })));
                let t_after_miss = ctx.elapsed();
                assert!((t_after_miss - 0.5).abs() < 1e-12, "clock at deadline");
                let idle_before = ctx.ledger().idle;
                // Generous deadline: the stashed message is delivered.
                let v = ctx.recv_deadline(1, 10.0).expect("second poll succeeds");
                let idle_gain = ctx.ledger().idle - idle_before;
                (v, ctx.elapsed(), idle_gain)
            }
        });
        let (v, t, idle_gain) = *report.result(0);
        assert_eq!(v, 9);
        assert!(t > 1.0 && t < 1.1, "arrival near 1 s, got {t}");
        // Waiting 0.5 → ~1.0 is idle minus the transfer attribution.
        assert!(idle_gain > 0.0);
    }

    #[test]
    fn recv_deadline_past_deadline_polls_without_advancing() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 1 {
                ctx.compute_par(100.0);
                ctx.send(0, 1);
                0.0
            } else {
                ctx.compute_seq(200.0); // now = 2.0; message arrived ~1.0
                                        // Deadline in the past, but the message's arrival (≈1.0)
                                        // is ≤ deadline → delivered without moving the clock.
                let v = ctx.recv_deadline(1, 1.5).expect("already arrived");
                assert_eq!(v, 1);
                assert!((ctx.elapsed() - 2.0).abs() < 1e-12, "no time travel");
                // And a past deadline with no pending message: timeout,
                // clock untouched.
                let miss = ctx.recv_deadline(1, 0.1);
                assert!(matches!(miss, Err(RecvError::Timeout { .. })));
                assert!((ctx.elapsed() - 2.0).abs() < 1e-12);
                ctx.elapsed()
            }
        });
        assert!((report.result(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn recv_deadline_exact_tie_delivers() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 1 {
                ctx.send(0, 3);
                0
            } else {
                // Compute the exact arrival: latency + 64-bit transfer.
                let transfer = ctx.platform().transfer_secs(1, 0, 64);
                let deadline = crate::platform::DEFAULT_MSG_LATENCY_S + transfer;
                ctx.recv_deadline(1, deadline)
                    .expect("exact-tie arrival is delivered")
            }
        });
        assert_eq!(*report.result(0), 3);
    }

    #[test]
    fn recv_deadline_timeout_accounts_idle_time() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 1 {
                ctx.compute_par(1000.0); // 10 s: far past the deadline
                ctx.send(0, 1);
                (0.0, 0.0)
            } else {
                let before = ctx.ledger().idle;
                let miss = ctx.recv_deadline(1, 2.0);
                assert!(matches!(miss, Err(RecvError::Timeout { deadline }) if deadline == 2.0));
                (ctx.elapsed(), ctx.ledger().idle - before)
            }
        });
        let (now, idle) = *report.result(0);
        assert!((now - 2.0).abs() < 1e-12);
        assert!((idle - 2.0).abs() < 1e-12, "the whole wait is idle");
    }

    #[test]
    fn failure_is_permanently_observable() {
        let engine = Engine::new(two_rank_platform()).with_faults(FaultPlan::new().crash(1, 0.5));
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 1 {
                ctx.wait_until(1.0);
                unreachable!()
            }
            let first = ctx.recv_deadline(1, 2.0);
            let second = ctx.recv_deadline(1, 3.0);
            assert_eq!(first, second, "failure reports must be stable");
            match second {
                Err(RecvError::Failed(f)) => (f.rank, f.at),
                other => panic!("expected permanent failure, got {other:?}"),
            }
        });
        assert_eq!(*report.result(0), (1, 0.5));
        // Observing a failure advances only to the failure instant.
        assert!((report.ledgers[0].now - 0.5).abs() < 1e-12);
    }

    #[test]
    fn link_outage_delays_transfer() {
        // Root in seg 0, worker in seg 1; outage on the link [0.0, 2.0).
        let procs = vec![
            crate::platform::ProcessorSpec {
                name: "r".into(),
                arch: "x",
                cycle_time: 0.01,
                memory_mb: 1024,
                cache_kb: 0,
                segment: 0,
                device: None,
            },
            crate::platform::ProcessorSpec {
                name: "w".into(),
                arch: "x",
                cycle_time: 0.01,
                memory_mb: 1024,
                cache_kb: 0,
                segment: 1,
                device: None,
            },
        ];
        let links = vec![vec![0.0, 10.0], vec![10.0, 0.0]];
        let plan = FaultPlan::new().link_outage(0, 1, 0.0, 2.0);
        let engine = Engine::new(Platform::new("lk", procs, links)).with_faults(plan);
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 0 {
                ctx.send(1, 5);
                0.0
            } else {
                let _ = ctx.recv(0);
                ctx.elapsed()
            }
        });
        // Transfer can only start at 2.0: arrival ≥ 2.0 despite ~0 send time.
        assert!(*report.result(1) >= 2.0, "got {}", report.result(1));
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(7u64.size_bits(), 64);
        assert_eq!(().size_bits(), 0);
        assert_eq!(WireVec(vec![0f32; 10]).size_bits(), 320);
        assert_eq!(3.5f64.size_bits(), 64);
    }

    #[test]
    fn wait_until_advances_idle() {
        let engine = Engine::new(Platform::uniform("one", 1, 0.01, 64, 0.0));
        let report = engine.run(|ctx: &mut Ctx<()>| {
            ctx.compute_par(100.0); // now = 1.0
            ctx.wait_until(2.5);
            ctx.wait_until(1.0); // in the past: no-op
            (ctx.elapsed(), ctx.ledger().idle)
        });
        let (now, idle) = *report.result(0);
        assert!((now - 2.5).abs() < 1e-12);
        assert!((idle - 1.5).abs() < 1e-12);
    }

    #[test]
    fn send_bits_overrides_payload_size() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 0 {
                // Tiny payload, one-megabit declared size.
                ctx.send_bits(1, 7, 1_000_000);
                0.0
            } else {
                let v = ctx.recv(0);
                assert_eq!(v, 7);
                ctx.elapsed()
            }
        });
        // 1 Mbit at 10 ms/Mbit = 0.01 s transfer + latency.
        assert!(*report.result(1) > 0.0099, "got {}", report.result(1));
    }

    #[test]
    fn ctx_accessors() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<()>| {
            assert_eq!(ctx.platform().num_procs(), 2);
            (ctx.rank(), ctx.num_ranks(), ctx.is_root())
        });
        assert_eq!(*report.result(0), (0, 2, true));
        assert_eq!(*report.result(1), (1, 2, false));
    }

    #[test]
    fn many_ranks_noop() {
        // 128 threads spin up and tear down cleanly.
        let engine = Engine::new(Platform::uniform("many", 128, 0.01, 64, 1.0));
        let report = engine.run(|ctx: &mut Ctx<()>| ctx.rank());
        assert_eq!(report.results.len(), 128);
        assert_eq!(*report.result(127), 127);
    }

    #[test]
    fn single_rank_run() {
        let engine = Engine::new(Platform::uniform("one", 1, 0.02, 64, 0.0));
        let report = engine.run(|ctx: &mut Ctx<()>| {
            ctx.compute_seq(50.0);
            ctx.elapsed()
        });
        assert!((report.result(0) - 1.0).abs() < 1e-12);
        assert!((report.total_time - 1.0).abs() < 1e-12);
    }
}
