//! The message-passing runtime.
//!
//! [`Engine::run`] spawns one OS thread per platform processor and hands
//! each a [`Ctx`]: its rank, a virtual-time ledger, and mailboxes to every
//! other rank (per-pair FIFO channels, so messages between a pair arrive
//! in send order — MPI's ordering guarantee). The API mirrors the MPI
//! subset the paper's algorithms use: [`Ctx::send`] / [`Ctx::recv`] plus
//! the collectives in [`crate::comm`].
//!
//! **Virtual time.** Computation is charged explicitly via
//! [`Ctx::compute_par`] / [`Ctx::compute_seq`] in megaflops; the engine
//! converts using the processor's cycle-time. Message timing follows the
//! platform's link matrix with serial inter-segment contention; see
//! [`crate::contention`] for the determinism argument.
//!
//! **Failure.** If any rank panics, its channels disconnect and every
//! rank blocked on [`Ctx::recv`] panics with a "peer terminated" message;
//! the panic then propagates out of [`Engine::run`].

use crate::clock::{Phase, TimeLedger};
use crate::contention::InterSegmentLinks;
use crate::platform::Platform;
use crate::report::RunReport;
use crate::trace::{Trace, TraceEvent, TraceKind};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;

type TraceSink = Option<Arc<Mutex<Vec<TraceEvent>>>>;

/// Types that can travel through the engine: anything sendable that can
/// report its wire size in bits (the paper's message-cost unit).
pub trait Wire: Send + 'static {
    /// Serialized size of this message in bits.
    fn size_bits(&self) -> u64;
}

/// A `Vec` wrapper implementing [`Wire`] with `len × size_of::<T>() × 8`
/// bits. Convenient for shipping raw numeric payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct WireVec<T>(pub Vec<T>);

impl<T: Send + 'static> Wire for WireVec<T> {
    fn size_bits(&self) -> u64 {
        (self.0.len() * std::mem::size_of::<T>() * 8) as u64
    }
}

macro_rules! impl_wire_fixed {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn size_bits(&self) -> u64 {
                (std::mem::size_of::<$t>() * 8) as u64
            }
        }
    )*};
}

impl_wire_fixed!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

impl Wire for () {
    fn size_bits(&self) -> u64 {
        0
    }
}

impl<A: Send + 'static, B: Send + 'static> Wire for (A, B) {
    fn size_bits(&self) -> u64 {
        (std::mem::size_of::<(A, B)>() * 8) as u64
    }
}

/// Engine configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommConfig {
    /// Per-message sender-side software overhead in seconds (MPI call +
    /// protocol latency). The transfer itself is DMA-style: it occupies
    /// the link, not the sending CPU. [`Engine::new`] initialises this
    /// from the platform's own latency.
    pub latency_s: f64,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            latency_s: crate::platform::DEFAULT_MSG_LATENCY_S,
        }
    }
}

/// In-flight message.
struct Envelope<M> {
    sent_at: f64,
    /// Set when the sender (the root) already reserved the link.
    arrives_at: Option<f64>,
    transfer_secs: f64,
    payload: M,
}

/// The per-rank execution context handed to the program closure.
pub struct Ctx<M: Wire> {
    rank: usize,
    platform: Arc<Platform>,
    config: CommConfig,
    links: Arc<InterSegmentLinks>,
    ledger: TimeLedger,
    txs: Vec<Sender<Envelope<M>>>,
    rxs: Vec<Option<Receiver<Envelope<M>>>>,
    trace: TraceSink,
}

impl<M: Wire> Ctx<M> {
    #[inline]
    fn record(&self, start: f64, kind: TraceKind) {
        if let Some(sink) = &self.trace {
            sink.lock().push(TraceEvent {
                rank: self.rank,
                start,
                end: self.ledger.now,
                kind,
            });
        }
    }
}

impl<M: Wire> Ctx<M> {
    /// This rank's id (`0` is the root/master).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the run.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.platform.num_procs()
    }

    /// `true` for rank 0.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// The platform this run executes on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn elapsed(&self) -> f64 {
        self.ledger.now
    }

    /// Read-only view of this rank's time ledger.
    pub fn ledger(&self) -> &TimeLedger {
        &self.ledger
    }

    /// Charges `mflops` megaflops of **parallel-phase** computation at
    /// this processor's cycle-time.
    pub fn compute_par(&mut self, mflops: f64) {
        let start = self.ledger.now;
        let secs = mflops * self.platform.proc(self.rank).cycle_time;
        self.ledger.compute(secs, Phase::Par);
        self.record(start, TraceKind::ComputePar);
    }

    /// Charges `mflops` megaflops of **sequential-phase** computation
    /// (root-only work while the rest of the system idles).
    pub fn compute_seq(&mut self, mflops: f64) {
        let start = self.ledger.now;
        let secs = mflops * self.platform.proc(self.rank).cycle_time;
        self.ledger.compute(secs, Phase::Seq);
        self.record(start, TraceKind::ComputeSeq);
    }

    /// Sends `payload` to `dst`, charging the wire size reported by the
    /// payload.
    pub fn send(&mut self, dst: usize, payload: M) {
        let bits = payload.size_bits();
        self.send_bits(dst, payload, bits);
    }

    /// Sends `payload` to `dst` **free of transfer cost** (only the
    /// per-message latency applies). Used for `ScatterMode::Free`
    /// data staging — see DESIGN.md.
    pub fn send_free(&mut self, dst: usize, payload: M) {
        self.send_bits(dst, payload, 0);
    }

    /// Sends `payload` to `dst`, charging an explicit wire size.
    ///
    /// # Panics
    /// Panics on self-sends and out-of-range destinations.
    pub fn send_bits(&mut self, dst: usize, payload: M, bits: u64) {
        assert!(dst < self.num_ranks(), "send: rank {dst} out of range");
        assert_ne!(dst, self.rank, "send: self-send not supported");
        let trace_start = self.ledger.now;
        self.ledger.send_overhead(self.config.latency_s);
        self.record(trace_start, TraceKind::Send { dst });
        let transfer_secs = self.platform.transfer_secs(self.rank, dst, bits);
        let sent_at = self.ledger.now;
        // Root-side link reservation keeps virtual timestamps
        // deterministic (root program order); see crate::contention.
        let arrives_at = if self.rank == 0 {
            let start = self.links.reserve(
                self.platform.segment_of(self.rank),
                self.platform.segment_of(dst),
                sent_at,
                transfer_secs,
            );
            Some(start + transfer_secs)
        } else {
            None
        };
        let env = Envelope {
            sent_at,
            arrives_at,
            transfer_secs,
            payload,
        };
        self.txs[dst]
            .send(env)
            .expect("send: peer terminated (receiver dropped)");
    }

    /// Receives the next message from `src` (blocking), advancing this
    /// rank's virtual clock to the message's arrival time.
    ///
    /// # Panics
    /// Panics on self-receives, out-of-range sources, or when the peer
    /// thread has terminated (panicked) without sending.
    pub fn recv(&mut self, src: usize) -> M {
        assert!(src < self.num_ranks(), "recv: rank {src} out of range");
        assert_ne!(src, self.rank, "recv: self-receive not supported");
        let rx = self.rxs[src]
            .as_ref()
            .expect("recv: receiver already moved");
        let env = rx
            .recv()
            .expect("recv: peer terminated before sending (likely a panic on the peer rank)");
        let arrival = match env.arrives_at {
            Some(a) => a,
            None => {
                if self.rank == 0 {
                    // Root resolves the reservation in its program order.
                    let start = self.links.reserve(
                        self.platform.segment_of(src),
                        self.platform.segment_of(self.rank),
                        env.sent_at,
                        env.transfer_secs,
                    );
                    start + env.transfer_secs
                } else {
                    // Worker↔worker: raw transfer, no queueing (documented
                    // approximation; only the halo ablation uses this).
                    env.sent_at + env.transfer_secs
                }
            }
        };
        let trace_start = self.ledger.now;
        self.ledger.receive(arrival, env.transfer_secs);
        self.record(trace_start, TraceKind::Recv { src });
        env.payload
    }

    /// Advances this rank's clock to at least `t` (idle wait). Used by
    /// phase-synchronisation helpers.
    pub fn wait_until(&mut self, t: f64) {
        self.ledger.receive(t, 0.0);
    }
}

/// The simulator: a platform plus engine configuration.
#[derive(Debug, Clone)]
pub struct Engine {
    platform: Arc<Platform>,
    config: CommConfig,
    /// Explicit data-parallel width per rank thread; `None` = automatic
    /// (`host cores / ranks`, clamped to at least 1).
    threads_per_rank: Option<usize>,
}

impl Engine {
    /// Creates an engine over a platform, adopting the platform's
    /// message latency.
    pub fn new(platform: Platform) -> Self {
        let config = CommConfig {
            latency_s: platform.msg_latency_s(),
        };
        Engine {
            platform: Arc::new(platform),
            config,
            threads_per_rank: None,
        }
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(platform: Platform, config: CommConfig) -> Self {
        Engine {
            platform: Arc::new(platform),
            config,
            threads_per_rank: None,
        }
    }

    /// Sets the data-parallel thread budget each rank installs for its
    /// kernels (the shared `rayon` pool width per rank thread). `0`
    /// restores the automatic default — `host cores / ranks`, clamped
    /// to at least 1 — which keeps `ranks × threads_per_rank ≤ cores`
    /// so real compute never oversubscribes the host.
    ///
    /// The setting affects **wall-clock speed only**: every kernel in
    /// this workspace is bit-deterministic across thread counts, and
    /// virtual-time charging is analytic, so reports are identical for
    /// any value (asserted by the `parallel_invariance` tests).
    pub fn with_threads_per_rank(mut self, threads: usize) -> Self {
        self.threads_per_rank = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// The data-parallel width each rank will install: the explicit
    /// [`Self::with_threads_per_rank`] value, or the automatic default.
    pub fn threads_per_rank(&self) -> usize {
        self.threads_per_rank.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            (cores / self.platform.num_procs()).max(1)
        })
    }

    /// The platform this engine simulates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Runs `program` on every rank concurrently and collects the report.
    ///
    /// The closure receives each rank's [`Ctx`]; its return value is
    /// collected into [`RunReport::results`] (indexed by rank).
    pub fn run<M, R, F>(&self, program: F) -> RunReport<R>
    where
        M: Wire,
        R: Send,
        F: Fn(&mut Ctx<M>) -> R + Sync,
    {
        self.run_inner(program, None)
    }

    /// Runs `program` while recording a per-rank execution [`Trace`]
    /// (see [`crate::trace`]).
    pub fn run_traced<M, R, F>(&self, program: F) -> (RunReport<R>, Trace)
    where
        M: Wire,
        R: Send,
        F: Fn(&mut Ctx<M>) -> R + Sync,
    {
        let sink = Arc::new(Mutex::new(Vec::new()));
        let report = self.run_inner(program, Some(Arc::clone(&sink)));
        let mut trace = Trace {
            events: std::mem::take(&mut *sink.lock()),
        };
        trace.finalize();
        (report, trace)
    }

    fn run_inner<M, R, F>(&self, program: F, trace: TraceSink) -> RunReport<R>
    where
        M: Wire,
        R: Send,
        F: Fn(&mut Ctx<M>) -> R + Sync,
    {
        let p = self.platform.num_procs();
        // P×P channel matrix; [src][dst].
        let mut senders: Vec<Vec<Sender<Envelope<M>>>> = Vec::with_capacity(p);
        let mut receivers: Vec<Vec<Option<Receiver<Envelope<M>>>>> =
            (0..p).map(|_| Vec::with_capacity(p)).collect();
        for _src in 0..p {
            let mut row = Vec::with_capacity(p);
            for dst_mailboxes in receivers.iter_mut() {
                let (tx, rx) = unbounded();
                row.push(tx);
                dst_mailboxes.push(Some(rx));
            }
            senders.push(row);
        }
        let links = Arc::new(InterSegmentLinks::new());
        let width = self.threads_per_rank();

        let mut outcomes: Vec<Option<(TimeLedger, R)>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, (txs, rxs)) in senders.into_iter().zip(receivers).enumerate() {
                let platform = Arc::clone(&self.platform);
                let links = Arc::clone(&links);
                let config = self.config;
                let program = &program;
                let trace = trace.clone();
                handles.push(scope.spawn(move || {
                    // Each rank installs a size-bounded kernel pool, so
                    // rank-level and data-level parallelism compose
                    // without oversubscription (ranks × width ≤ cores by
                    // default). Kernel results don't depend on the
                    // width, only wall-clock time does.
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(width)
                        .build()
                        .expect("engine: kernel pool");
                    let mut ctx = Ctx {
                        rank,
                        platform,
                        config,
                        links,
                        ledger: TimeLedger::new(),
                        txs,
                        rxs,
                        trace,
                    };
                    let result = pool.install(|| program(&mut ctx));
                    (ctx.ledger, result)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(pair) => outcomes[rank] = Some(pair),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let mut ledgers = Vec::with_capacity(p);
        let mut results = Vec::with_capacity(p);
        for o in outcomes {
            let (ledger, result) = o.expect("engine: missing rank outcome");
            ledgers.push(ledger);
            results.push(result);
        }
        RunReport::new(self.platform.name().to_string(), ledgers, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn two_rank_platform() -> Platform {
        Platform::uniform("t2", 2, 0.01, 1024, 10.0)
    }

    #[test]
    fn compute_cost_scales_with_cycle_time() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<()>| {
            ctx.compute_par(100.0); // 100 Mflop at 0.01 s/Mflop = 1 s
            ctx.elapsed()
        });
        assert!((report.results[0] - 1.0).abs() < 1e-12);
        assert!((report.results[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn message_timing_includes_transfer() {
        let engine = Engine::new(two_rank_platform());
        // 1 Mbit message over a 10 ms/Mbit link = 0.01 s transfer.
        let report = engine.run(|ctx: &mut Ctx<WireVec<u8>>| {
            if ctx.rank() == 1 {
                ctx.send(0, WireVec(vec![0u8; 125_000])); // 1 Mbit
                0.0
            } else {
                let _ = ctx.recv(1);
                ctx.elapsed()
            }
        });
        let expect = crate::platform::DEFAULT_MSG_LATENCY_S + 0.01; // latency + transfer
        assert!(
            (report.results[0] - expect).abs() < 1e-9,
            "got {}",
            report.results[0]
        );
    }

    #[test]
    fn send_free_skips_transfer_cost() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<WireVec<u8>>| {
            if ctx.rank() == 0 {
                ctx.send_free(1, WireVec(vec![0u8; 125_000]));
                0.0
            } else {
                let _ = ctx.recv(0);
                ctx.elapsed()
            }
        });
        // Only the sender's per-message latency moves time.
        assert!((report.results[1] - crate::platform::DEFAULT_MSG_LATENCY_S).abs() < 1e-9);
    }

    #[test]
    fn per_pair_fifo_ordering() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 0 {
                for i in 0..10u64 {
                    ctx.send(1, i);
                }
                Vec::new()
            } else {
                (0..10).map(|_| ctx.recv(0)).collect::<Vec<u64>>()
            }
        });
        assert_eq!(report.results[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn receiver_waits_for_slow_sender() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 1 {
                ctx.compute_par(500.0); // 5 s of work before sending
                ctx.send(0, 7);
            } else {
                let v = ctx.recv(1);
                assert_eq!(v, 7);
            }
            ctx.ledger().clone()
        });
        let root = &report.results[0];
        assert!(root.now >= 5.0, "root must wait for the worker");
        assert!(root.idle > 4.9, "the wait is idle time");
    }

    #[test]
    fn intersegment_contention_serializes_root_sends() {
        // Two segments: root in seg 0, two workers in seg 1. Root sends
        // both workers a 1 Mbit message; the serial link forces the
        // second transfer to queue behind the first.
        let procs = vec![
            crate::platform::ProcessorSpec {
                name: "r".into(),
                arch: "x",
                cycle_time: 0.01,
                memory_mb: 1024,
                cache_kb: 0,
                segment: 0,
            },
            crate::platform::ProcessorSpec {
                name: "w1".into(),
                arch: "x",
                cycle_time: 0.01,
                memory_mb: 1024,
                cache_kb: 0,
                segment: 1,
            },
            crate::platform::ProcessorSpec {
                name: "w2".into(),
                arch: "x",
                cycle_time: 0.01,
                memory_mb: 1024,
                cache_kb: 0,
                segment: 1,
            },
        ];
        let links = vec![
            vec![0.0, 100.0, 100.0],
            vec![100.0, 0.0, 1.0],
            vec![100.0, 1.0, 0.0],
        ];
        let engine = Engine::new(Platform::new("seg", procs, links));
        let report = engine.run(|ctx: &mut Ctx<WireVec<u8>>| {
            if ctx.rank() == 0 {
                ctx.send(1, WireVec(vec![0u8; 125_000])); // 0.1 s transfer
                ctx.send(2, WireVec(vec![0u8; 125_000]));
                0.0
            } else {
                let _ = ctx.recv(0);
                ctx.elapsed()
            }
        });
        // First worker: ~latency + 0.1. Second: queued behind → ~+0.2.
        assert!(report.results[1] < 0.15, "got {}", report.results[1]);
        assert!(
            report.results[2] > 0.2,
            "second transfer should queue: {}",
            report.results[2]
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let engine = Engine::new(crate::presets::fully_heterogeneous());
        let run = || {
            engine.run(|ctx: &mut Ctx<WireVec<f32>>| {
                if ctx.rank() == 0 {
                    let mut acc = 0.0;
                    for src in 1..ctx.num_ranks() {
                        let v = ctx.recv(src);
                        acc += v.0[0] as f64;
                    }
                    ctx.compute_seq(10.0);
                    (acc, ctx.elapsed())
                } else {
                    ctx.compute_par(50.0 * ctx.rank() as f64);
                    ctx.send(0, WireVec(vec![ctx.rank() as f32; 1000]));
                    (0.0, ctx.elapsed())
                }
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x, y, "virtual timestamps must be deterministic");
        }
        assert_eq!(a.total_time, b.total_time);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let engine = Engine::new(two_rank_platform());
        let _ = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 1 {
                panic!("worker died");
            }
            ctx.recv(1)
        });
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(7u64.size_bits(), 64);
        assert_eq!(().size_bits(), 0);
        assert_eq!(WireVec(vec![0f32; 10]).size_bits(), 320);
        assert_eq!(3.5f64.size_bits(), 64);
    }

    #[test]
    fn wait_until_advances_idle() {
        let engine = Engine::new(Platform::uniform("one", 1, 0.01, 64, 0.0));
        let report = engine.run(|ctx: &mut Ctx<()>| {
            ctx.compute_par(100.0); // now = 1.0
            ctx.wait_until(2.5);
            ctx.wait_until(1.0); // in the past: no-op
            (ctx.elapsed(), ctx.ledger().idle)
        });
        let (now, idle) = report.results[0];
        assert!((now - 2.5).abs() < 1e-12);
        assert!((idle - 1.5).abs() < 1e-12);
    }

    #[test]
    fn send_bits_overrides_payload_size() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.rank() == 0 {
                // Tiny payload, one-megabit declared size.
                ctx.send_bits(1, 7, 1_000_000);
                0.0
            } else {
                let v = ctx.recv(0);
                assert_eq!(v, 7);
                ctx.elapsed()
            }
        });
        // 1 Mbit at 10 ms/Mbit = 0.01 s transfer + latency.
        assert!(report.results[1] > 0.0099, "got {}", report.results[1]);
    }

    #[test]
    fn ctx_accessors() {
        let engine = Engine::new(two_rank_platform());
        let report = engine.run(|ctx: &mut Ctx<()>| {
            assert_eq!(ctx.platform().num_procs(), 2);
            (ctx.rank(), ctx.num_ranks(), ctx.is_root())
        });
        assert_eq!(report.results[0], (0, 2, true));
        assert_eq!(report.results[1], (1, 2, false));
    }

    #[test]
    fn many_ranks_noop() {
        // 128 threads spin up and tear down cleanly.
        let engine = Engine::new(Platform::uniform("many", 128, 0.01, 64, 1.0));
        let report = engine.run(|ctx: &mut Ctx<()>| ctx.rank());
        assert_eq!(report.results.len(), 128);
        assert_eq!(report.results[127], 127);
    }

    #[test]
    fn single_rank_run() {
        let engine = Engine::new(Platform::uniform("one", 1, 0.02, 64, 0.0));
        let report = engine.run(|ctx: &mut Ctx<()>| {
            ctx.compute_seq(50.0);
            ctx.elapsed()
        });
        assert!((report.results[0] - 1.0).abs() < 1e-12);
        assert!((report.total_time - 1.0).abs() < 1e-12);
    }
}
