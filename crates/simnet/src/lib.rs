//! # simnet — virtual-time heterogeneous cluster simulator
//!
//! The paper evaluates its algorithms on four 16-node networks of
//! workstations (Tables 1–2) and a 256-node Beowulf cluster. This crate
//! stands in for those machines: it runs every *rank* as a real OS thread
//! executing real computation, while **time is virtual** — derived purely
//! from the platform model:
//!
//! * compute cost = megaflops × the processor's cycle-time `w_i`
//!   (seconds per megaflop, the paper's Table 1 metric),
//! * message cost = megabits × the link capacity `c_ij`
//!   (milliseconds per megabit, the paper's Table 2 metric),
//! * transfers that cross communication-segment boundaries contend for
//!   the serial inter-segment link (FIFO in virtual time), as described
//!   in §3.1 of the paper.
//!
//! Because reported times are functions of the platform model only, runs
//! are deterministic, host-independent, and reproduce the *relationships*
//! (who wins, by what factor) that the paper's testbed produced.
//!
//! ## Module map
//!
//! * [`platform`] — processors, segments and the link-capacity matrix.
//! * [`presets`] — the paper's four networks and the Thunderhead cluster.
//! * [`equivalent`] — Lastovetsky & Reddy's "equivalent homogeneous
//!   network" construction and checker (the paper's evaluation framework).
//! * [`clock`] — per-rank virtual clocks and time ledgers.
//! * [`contention`] — serial inter-segment link reservation.
//! * [`engine`] — the message-passing runtime (threads + channels).
//! * [`comm`] — the linear-baseline collective wrappers (broadcast,
//!   scatter, gather, barrier, reduce).
//! * [`coll`] — topology-aware collective algorithms (linear, binomial
//!   tree, segment-hierarchical, pipelined-chunked) with cost-model
//!   driven `Auto` selection.
//! * [`faults`] — deterministic virtual-time fault plans: rank crashes,
//!   slowdown windows, link outage/degradation; structured failures.
//! * [`accel`] — the accelerator device model (GPU/FPGA specs, offload
//!   cost prediction, per-rank offload telemetry).
//! * [`report`] — COM/SEQ/PAR decomposition, imbalance, speedup,
//!   per-rank failure records.
//! * [`prof`] — post-run profiler: exact per-rank phase accounting,
//!   critical-path extraction with bottleneck attribution, Chrome-trace
//!   export.
//!
//! ## Example
//!
//! ```
//! use simnet::engine::{Engine, WireVec};
//! use simnet::presets;
//!
//! let platform = presets::fully_heterogeneous();
//! let engine = Engine::new(platform);
//! let report = engine.run(|ctx| {
//!     // Every rank computes 100 Mflop; rank 0 gathers a token from all.
//!     ctx.compute_par(100.0);
//!     if ctx.rank() == 0 {
//!         for src in 1..ctx.num_ranks() {
//!             let _tok: WireVec<f32> = ctx.recv(src);
//!         }
//!     } else {
//!         ctx.send(0, WireVec(vec![0.0f32]));
//!     }
//!     ctx.elapsed()
//! });
//! // The slowest processor (UltraSparc, 0.0451 s/Mflop) dominates.
//! assert!(report.total_time > 4.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::redundant_clone))]

pub mod accel;
pub mod clock;
pub mod coll;
pub mod comm;
pub mod contention;
pub mod engine;
pub mod equivalent;
pub mod faults;
pub mod platform;
pub mod presets;
pub mod prof;
pub mod report;
pub mod trace;

pub use accel::{DeviceKind, DeviceSim, DeviceSpec, OffloadStats};
pub use coll::{
    CollAlgorithm, CollError, CollOp, CollectiveChoice, CollectiveConfig, GatherEntry, Membership,
    ScatterMode, Stamped, Tree,
};
pub use engine::{Ctx, Engine, Wire};
pub use faults::{FailureCause, FaultPlan, FaultPlanError, RankFailure, RecvError};
pub use platform::{Platform, ProcessorSpec};
pub use prof::{
    chrome_trace, Bottleneck, CriticalPath, PathElement, PathOwner, PhaseBreakdown, PhaseKind,
    RankProfile, RunProfile,
};
pub use report::{CopyStats, EpochTransition, RankSummary, RunReport};
