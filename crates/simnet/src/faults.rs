//! Deterministic virtual-time fault plans.
//!
//! The paper's §5 names fault tolerance as the open problem for
//! heterogeneous remote-sensing clusters: nodes of a network of
//! workstations crash, get loaded by other users, and links saturate.
//! This module describes such events **in virtual time**, so that a
//! faulty run is exactly as deterministic as a healthy one:
//!
//! * [`FaultPlan::crash`] — a rank dies the moment its own virtual clock
//!   reaches `t`. The engine unwinds the rank, records a structured
//!   [`RankFailure`], and notifies every peer through the ordinary
//!   message channels (FIFO, so all messages sent before the crash are
//!   still delivered first).
//! * [`FaultPlan::slowdown`] — during `[from, until)` a rank's compute
//!   takes `factor`× its nominal time (a hidden external load). Applied
//!   by piecewise integration in [`FaultPlan::dilate`], so work spanning
//!   a window boundary is charged exactly.
//! * [`FaultPlan::link_outage`] / [`FaultPlan::link_degraded`] — an
//!   inter-segment link is down (transfers wait for the window to end)
//!   or slowed by a factor during a virtual-time window.
//!
//! Everything here is pure arithmetic over the plan; the engine injects
//! the results through the existing cost model (clock, contention,
//! comm), which is what keeps runs bit-deterministic.

/// Why a rank failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// A crash scheduled by the run's [`FaultPlan`].
    Crash,
    /// The rank's program panicked (message preserved).
    Panic(String),
    /// The rank aborted because a peer it was receiving from was lost.
    PeerLost {
        /// The peer whose loss cascaded into this rank.
        peer: usize,
    },
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Crash => write!(f, "planned crash"),
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::PeerLost { peer } => write!(f, "peer rank {peer} lost"),
        }
    }
}

/// Structured description of a rank failure: which rank died, at what
/// virtual time, and why. Carried by [`crate::RunReport::failures`] and
/// by [`RecvError::Failed`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankFailure {
    /// The failed rank.
    pub rank: usize,
    /// Virtual time of the failure in seconds.
    pub at: f64,
    /// What killed the rank.
    pub cause: FailureCause,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} failed at {:.6}s ({})",
            self.rank, self.at, self.cause
        )
    }
}

impl std::error::Error for RankFailure {}

/// Error returned by [`crate::Ctx::recv_deadline`]: either no message
/// arrived by the virtual deadline, or the source rank is known to have
/// failed by then.
#[derive(Debug, Clone, PartialEq)]
pub enum RecvError {
    /// No message from the source arrived at or before `deadline`.
    Timeout {
        /// The virtual deadline that expired.
        deadline: f64,
    },
    /// The source rank failed at or before the deadline.
    Failed(RankFailure),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout { deadline } => {
                write!(f, "no message by virtual deadline {deadline:.6}s")
            }
            RecvError::Failed(failure) => write!(f, "{failure}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Structured rejection of an invalid [`FaultPlan`] entry at
/// construction time.
///
/// Historically a `slowdown` window with `factor = +∞` passed the
/// builder's range assert and then sent [`FaultPlan::dilate`] into an
/// infinite loop (each window slice contributes zero capacity), while a
/// `link_degraded` window with a non-finite factor was *silently
/// dropped* by the finite-factor filter in
/// [`FaultPlan::adjust_transfer`] — the plan looked armed but did
/// nothing. Both are now rejected here, at plan construction.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A `slowdown` factor that is NaN, ±∞, or not strictly positive.
    InvalidSlowdownFactor {
        /// The rank the window targeted.
        rank: usize,
        /// The offending factor.
        factor: f64,
    },
    /// A `link_degraded` factor that is NaN, ±∞, or below 1.
    InvalidLinkFactor {
        /// Lower-numbered segment of the link.
        seg_a: usize,
        /// Higher-numbered segment of the link.
        seg_b: usize,
        /// The offending factor.
        factor: f64,
    },
    /// A window whose end does not lie strictly after its start.
    EmptyWindow {
        /// Window start (virtual seconds).
        from: f64,
        /// Window end (virtual seconds).
        until: f64,
    },
    /// A crash scheduled at a negative (or NaN) virtual time.
    InvalidCrashTime {
        /// The rank the crash targeted.
        rank: usize,
        /// The offending crash instant.
        at: f64,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::InvalidSlowdownFactor { rank, factor } => write!(
                f,
                "slowdown factor for rank {rank} must be finite and > 0 (got {factor})"
            ),
            FaultPlanError::InvalidLinkFactor {
                seg_a,
                seg_b,
                factor,
            } => write!(
                f,
                "link degradation factor for segments {seg_a}\u{2194}{seg_b} must be finite and \u{2265} 1 (got {factor}); use link_outage for a down link"
            ),
            FaultPlanError::EmptyWindow { from, until } => {
                write!(f, "fault window [{from}, {until}) is empty")
            }
            FaultPlanError::InvalidCrashTime { rank, at } => {
                write!(f, "crash time for rank {rank} must be non-negative (got {at})")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// One per-rank slowdown window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Slowdown {
    rank: usize,
    from: f64,
    until: f64,
    factor: f64,
}

/// One inter-segment link fault window (`factor = ∞` means outage).
#[derive(Debug, Clone, Copy, PartialEq)]
struct LinkWindow {
    a: usize,
    b: usize,
    from: f64,
    until: f64,
    factor: f64,
}

/// A deterministic virtual-time fault schedule, attached to a run with
/// [`crate::Engine::with_faults`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    crashes: Vec<(usize, f64)>,
    slowdowns: Vec<Slowdown>,
    links: Vec<LinkWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.slowdowns.is_empty() && self.links.is_empty()
    }

    /// Schedules `rank` to crash when its own virtual clock reaches
    /// `at` seconds. A rank that never advances past `at` (e.g. it
    /// finishes earlier) exits cleanly — a crash only materialises on
    /// activity at or after the crash instant.
    ///
    /// # Panics
    /// On an invalid crash time; use [`FaultPlan::try_crash`] for a
    /// structured [`FaultPlanError`] instead.
    pub fn crash(self, rank: usize, at: f64) -> Self {
        match self.try_crash(rank, at) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`FaultPlan::crash`]: rejects NaN or negative
    /// crash times with a structured [`FaultPlanError`].
    pub fn try_crash(mut self, rank: usize, at: f64) -> Result<Self, FaultPlanError> {
        let at_ok = at.is_finite() && at >= 0.0;
        if !at_ok {
            return Err(FaultPlanError::InvalidCrashTime { rank, at });
        }
        self.crashes.push((rank, at));
        Ok(self)
    }

    /// During `[from, until)`, computation on `rank` takes `factor`×
    /// its nominal time (`factor ≥ 1`: an external load stealing
    /// cycles; `factor < 1` would model a turbo boost and is allowed).
    ///
    /// # Panics
    /// On a NaN/±∞/non-positive factor or an empty window; use
    /// [`FaultPlan::try_slowdown`] for a structured [`FaultPlanError`]
    /// instead. An infinite factor is rejected rather than treated as a
    /// halt: [`FaultPlan::dilate`] integrates work through windows, and
    /// an infinite factor yields zero capacity per slice (a
    /// non-terminating integral). Model a dead rank with
    /// [`FaultPlan::crash`].
    pub fn slowdown(self, rank: usize, from: f64, until: f64, factor: f64) -> Self {
        match self.try_slowdown(rank, from, until, factor) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`FaultPlan::slowdown`]: rejects NaN, ±∞ and
    /// non-positive factors (and empty windows) with a structured
    /// [`FaultPlanError`].
    pub fn try_slowdown(
        mut self,
        rank: usize,
        from: f64,
        until: f64,
        factor: f64,
    ) -> Result<Self, FaultPlanError> {
        let factor_ok = factor.is_finite() && factor > 0.0;
        if !factor_ok {
            return Err(FaultPlanError::InvalidSlowdownFactor { rank, factor });
        }
        let window_ok = until > from;
        if !window_ok {
            return Err(FaultPlanError::EmptyWindow { from, until });
        }
        self.slowdowns.push(Slowdown {
            rank,
            from,
            until,
            factor,
        });
        Ok(self)
    }

    /// The `seg_a`↔`seg_b` inter-segment link is down during
    /// `[from, until)`: transfers starting inside the window wait for
    /// it to end.
    ///
    /// # Panics
    /// On an empty window; use [`FaultPlan::try_link_outage`] for a
    /// structured [`FaultPlanError`] instead.
    pub fn link_outage(self, seg_a: usize, seg_b: usize, from: f64, until: f64) -> Self {
        match self.try_link_outage(seg_a, seg_b, from, until) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`FaultPlan::link_outage`]: rejects empty
    /// windows with a structured [`FaultPlanError`]. (An outage is the
    /// one legitimate infinite-factor window; it is stored with
    /// `factor = ∞` internally and handled by the start-pushing loop in
    /// [`FaultPlan::adjust_transfer`], never by duration stretching.)
    pub fn try_link_outage(
        mut self,
        seg_a: usize,
        seg_b: usize,
        from: f64,
        until: f64,
    ) -> Result<Self, FaultPlanError> {
        let window_ok = until > from;
        if !window_ok {
            return Err(FaultPlanError::EmptyWindow { from, until });
        }
        self.links.push(LinkWindow {
            a: seg_a.min(seg_b),
            b: seg_a.max(seg_b),
            from,
            until,
            factor: f64::INFINITY,
        });
        Ok(self)
    }

    /// The `seg_a`↔`seg_b` link is `factor`× slower for transfers
    /// starting during `[from, until)` (the factor is sampled at the
    /// transfer's start — a documented approximation).
    ///
    /// # Panics
    /// On a NaN/±∞/sub-1 factor or an empty window; use
    /// [`FaultPlan::try_link_degraded`] for a structured
    /// [`FaultPlanError`] instead. An infinite factor used to slip
    /// through the old range assert and then be silently ignored by the
    /// finite-factor match in [`FaultPlan::adjust_transfer`]; it is now
    /// rejected here with a pointer to [`FaultPlan::link_outage`].
    pub fn link_degraded(
        self,
        seg_a: usize,
        seg_b: usize,
        from: f64,
        until: f64,
        factor: f64,
    ) -> Self {
        match self.try_link_degraded(seg_a, seg_b, from, until, factor) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`FaultPlan::link_degraded`]: rejects NaN, ±∞
    /// and sub-1 factors (and empty windows) with a structured
    /// [`FaultPlanError`].
    pub fn try_link_degraded(
        mut self,
        seg_a: usize,
        seg_b: usize,
        from: f64,
        until: f64,
        factor: f64,
    ) -> Result<Self, FaultPlanError> {
        let factor_ok = factor.is_finite() && factor >= 1.0;
        if !factor_ok {
            return Err(FaultPlanError::InvalidLinkFactor {
                seg_a: seg_a.min(seg_b),
                seg_b: seg_a.max(seg_b),
                factor,
            });
        }
        let window_ok = until > from;
        if !window_ok {
            return Err(FaultPlanError::EmptyWindow { from, until });
        }
        self.links.push(LinkWindow {
            a: seg_a.min(seg_b),
            b: seg_a.max(seg_b),
            from,
            until,
            factor,
        });
        Ok(self)
    }

    /// Largest slowdown factor that any window for `rank` applies at or
    /// after `start` (1.0 when no window is active). This is the
    /// analytic worst case a scheduler may use to bound how late a
    /// merely-slowed (not crashed) rank can finish nominal work.
    pub fn max_slowdown_factor(&self, rank: usize, start: f64) -> f64 {
        self.slowdowns
            .iter()
            .filter(|s| s.rank == rank && s.until > start)
            .map(|s| s.factor)
            .fold(1.0f64, f64::max)
    }

    /// Earliest scheduled crash time of `rank`, if any.
    pub fn crash_time(&self, rank: usize) -> Option<f64> {
        self.crashes
            .iter()
            .filter(|&&(r, _)| r == rank)
            .map(|&(_, at)| at)
            .min_by(f64::total_cmp)
    }

    /// Virtual end time of `secs` seconds of nominal compute starting at
    /// `start` on `rank`, stretched through the rank's slowdown windows
    /// by piecewise integration. Overlapping windows apply the largest
    /// factor.
    pub fn dilate(&self, rank: usize, start: f64, secs: f64) -> f64 {
        debug_assert!(secs >= 0.0);
        if secs <= 0.0 {
            return start;
        }
        let wins: Vec<&Slowdown> = self
            .slowdowns
            .iter()
            .filter(|s| s.rank == rank && s.until > start)
            .collect();
        if wins.is_empty() {
            return start + secs;
        }
        let mut t = start;
        let mut remaining = secs; // nominal work-seconds still to do
        loop {
            let factor = wins
                .iter()
                .filter(|w| w.from <= t && t < w.until)
                .map(|w| w.factor)
                .fold(1.0f64, f64::max);
            let next_boundary = wins
                .iter()
                .flat_map(|w| [w.from, w.until])
                .filter(|&b| b > t)
                .fold(f64::INFINITY, f64::min);
            let capacity = (next_boundary - t) / factor;
            if capacity >= remaining {
                return t + remaining * factor;
            }
            remaining -= capacity;
            t = next_boundary;
        }
    }

    /// Adjusts a transfer over the `seg_a`↔`seg_b` link that would start
    /// no earlier than `earliest` and last `duration`: outage windows
    /// push the start past their end, degradation windows stretch the
    /// duration. Returns `(earliest', duration')`.
    pub fn adjust_transfer(
        &self,
        seg_a: usize,
        seg_b: usize,
        earliest: f64,
        duration: f64,
    ) -> (f64, f64) {
        if self.links.is_empty() {
            return (earliest, duration);
        }
        let key = (seg_a.min(seg_b), seg_a.max(seg_b));
        let mut start = earliest;
        loop {
            let mut moved = false;
            for w in &self.links {
                if (w.a, w.b) == key && w.factor.is_infinite() && w.from <= start && start < w.until
                {
                    start = w.until;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        let factor = self
            .links
            .iter()
            .filter(|w| {
                (w.a, w.b) == key && w.factor.is_finite() && w.from <= start && start < w.until
            })
            .map(|w| w.factor)
            .fold(1.0f64, f64::max);
        (start, duration * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.crash_time(3), None);
        assert_eq!(plan.dilate(0, 1.0, 2.0), 3.0);
        assert_eq!(plan.adjust_transfer(0, 1, 5.0, 0.5), (5.0, 0.5));
    }

    #[test]
    fn earliest_crash_wins() {
        let plan = FaultPlan::new().crash(2, 5.0).crash(2, 1.5).crash(1, 9.0);
        assert_eq!(plan.crash_time(2), Some(1.5));
        assert_eq!(plan.crash_time(1), Some(9.0));
        assert_eq!(plan.crash_time(0), None);
    }

    #[test]
    fn dilate_inside_window() {
        // 2x slowdown on [0, 100): 3 s of work takes 6 s.
        let plan = FaultPlan::new().slowdown(0, 0.0, 100.0, 2.0);
        assert!((plan.dilate(0, 1.0, 3.0) - 7.0).abs() < 1e-12);
        // Other ranks unaffected.
        assert_eq!(plan.dilate(1, 1.0, 3.0), 4.0);
    }

    #[test]
    fn dilate_across_window_boundary() {
        // 3x slowdown on [2, 4). Work of 4 s starting at 0:
        // 2 s nominal before the window, then 2/3 s of work fills [2,4),
        // leaving 4 - 2 - 2/3 to run after 4.0 at nominal speed.
        let plan = FaultPlan::new().slowdown(0, 2.0, 4.0, 3.0);
        let end = plan.dilate(0, 0.0, 4.0);
        let expect = 4.0 + (4.0 - 2.0 - 2.0 / 3.0);
        assert!((end - expect).abs() < 1e-12, "end {end} expect {expect}");
    }

    #[test]
    fn dilate_overlapping_windows_take_max_factor() {
        let plan = FaultPlan::new()
            .slowdown(0, 0.0, 10.0, 2.0)
            .slowdown(0, 0.0, 10.0, 4.0);
        assert!((plan.dilate(0, 0.0, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn outage_pushes_transfer_start() {
        let plan = FaultPlan::new().link_outage(0, 1, 1.0, 3.0);
        assert_eq!(plan.adjust_transfer(1, 0, 2.0, 0.5), (3.0, 0.5));
        // Starting before the window is unaffected (the engine reserves
        // from the adjusted earliest; contention may still delay it).
        assert_eq!(plan.adjust_transfer(0, 1, 0.5, 0.2), (0.5, 0.2));
        // Other links unaffected.
        assert_eq!(plan.adjust_transfer(2, 3, 2.0, 0.5), (2.0, 0.5));
    }

    #[test]
    fn chained_outages_push_repeatedly() {
        let plan = FaultPlan::new()
            .link_outage(0, 1, 1.0, 3.0)
            .link_outage(0, 1, 3.0, 5.0);
        assert_eq!(plan.adjust_transfer(0, 1, 2.0, 0.5), (5.0, 0.5));
    }

    #[test]
    fn degradation_stretches_duration() {
        let plan = FaultPlan::new().link_degraded(0, 1, 0.0, 10.0, 4.0);
        assert_eq!(plan.adjust_transfer(0, 1, 2.0, 0.5), (2.0, 2.0));
        // Outside the window: untouched.
        assert_eq!(plan.adjust_transfer(0, 1, 20.0, 0.5), (20.0, 0.5));
    }

    #[test]
    fn non_finite_slowdown_factors_are_rejected_at_construction() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -2.0] {
            let err = FaultPlan::new()
                .try_slowdown(3, 0.0, 1.0, bad)
                .expect_err("factor must be rejected");
            match err {
                FaultPlanError::InvalidSlowdownFactor { rank, factor } => {
                    assert_eq!(rank, 3);
                    assert!(factor.is_nan() == bad.is_nan() && (factor.is_nan() || factor == bad));
                }
                other => panic!("wrong error: {other:?}"),
            }
        }
        // Valid factors (including turbo-boost < 1) still construct.
        assert!(FaultPlan::new().try_slowdown(0, 0.0, 1.0, 0.5).is_ok());
        assert!(FaultPlan::new().try_slowdown(0, 0.0, 1.0, 8.0).is_ok());
    }

    #[test]
    fn non_finite_link_degradation_factors_are_rejected_at_construction() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.5, -1.0] {
            let err = FaultPlan::new()
                .try_link_degraded(1, 0, 0.0, 1.0, bad)
                .expect_err("factor must be rejected");
            match err {
                FaultPlanError::InvalidLinkFactor { seg_a, seg_b, .. } => {
                    assert_eq!((seg_a, seg_b), (0, 1), "segments normalised low-high");
                }
                other => panic!("wrong error: {other:?}"),
            }
        }
        // The error text points the caller at the outage API.
        let msg = FaultPlan::new()
            .try_link_degraded(0, 1, 0.0, 1.0, f64::INFINITY)
            .expect_err("infinite degradation rejected")
            .to_string();
        assert!(msg.contains("link_outage"), "got: {msg}");
        // link_outage itself (the legitimate internal ∞) is unaffected.
        let plan = FaultPlan::new().link_outage(0, 1, 1.0, 3.0);
        assert_eq!(plan.adjust_transfer(0, 1, 2.0, 0.5), (3.0, 0.5));
    }

    #[test]
    fn infallible_builders_panic_with_structured_message() {
        let caught = std::panic::catch_unwind(|| {
            let _ = FaultPlan::new().slowdown(2, 0.0, 1.0, f64::INFINITY);
        })
        .expect_err("must panic");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("finite"), "got: {msg}");
        assert!(msg.contains("rank 2"), "got: {msg}");
    }

    #[test]
    fn empty_windows_and_bad_crash_times_are_structured_errors() {
        assert_eq!(
            FaultPlan::new().try_slowdown(0, 2.0, 2.0, 2.0),
            Err(FaultPlanError::EmptyWindow {
                from: 2.0,
                until: 2.0
            })
        );
        assert_eq!(
            FaultPlan::new().try_link_outage(0, 1, 5.0, 4.0),
            Err(FaultPlanError::EmptyWindow {
                from: 5.0,
                until: 4.0
            })
        );
        assert_eq!(
            FaultPlan::new().try_crash(1, -0.5),
            Err(FaultPlanError::InvalidCrashTime { rank: 1, at: -0.5 })
        );
        assert!(FaultPlan::new().try_crash(1, f64::NAN).is_err());
        assert!(FaultPlan::new().try_crash(1, f64::INFINITY).is_err());
    }

    #[test]
    fn max_slowdown_factor_reports_worst_active_window() {
        let plan = FaultPlan::new()
            .slowdown(1, 0.0, 2.0, 3.0)
            .slowdown(1, 1.0, 5.0, 6.0)
            .slowdown(2, 0.0, 9.0, 2.0);
        assert_eq!(plan.max_slowdown_factor(1, 0.0), 6.0);
        // Windows entirely before `start` no longer apply.
        assert_eq!(plan.max_slowdown_factor(1, 2.5), 6.0);
        assert_eq!(plan.max_slowdown_factor(1, 5.5), 1.0);
        assert_eq!(plan.max_slowdown_factor(0, 0.0), 1.0);
    }

    #[test]
    fn display_formats() {
        let f = RankFailure {
            rank: 3,
            at: 1.25,
            cause: FailureCause::Crash,
        };
        assert!(f.to_string().contains("rank 3"));
        assert!(f.to_string().contains("planned crash"));
        let e = RecvError::Timeout { deadline: 2.0 };
        assert!(e.to_string().contains("deadline"));
        assert!(RecvError::Failed(f).to_string().contains("rank 3"));
        assert!(FailureCause::Panic("boom".into())
            .to_string()
            .contains("boom"));
        assert!(FailureCause::PeerLost { peer: 7 }.to_string().contains('7'));
    }
}
