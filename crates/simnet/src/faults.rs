//! Deterministic virtual-time fault plans.
//!
//! The paper's §5 names fault tolerance as the open problem for
//! heterogeneous remote-sensing clusters: nodes of a network of
//! workstations crash, get loaded by other users, and links saturate.
//! This module describes such events **in virtual time**, so that a
//! faulty run is exactly as deterministic as a healthy one:
//!
//! * [`FaultPlan::crash`] — a rank dies the moment its own virtual clock
//!   reaches `t`. The engine unwinds the rank, records a structured
//!   [`RankFailure`], and notifies every peer through the ordinary
//!   message channels (FIFO, so all messages sent before the crash are
//!   still delivered first).
//! * [`FaultPlan::slowdown`] — during `[from, until)` a rank's compute
//!   takes `factor`× its nominal time (a hidden external load). Applied
//!   by piecewise integration in [`FaultPlan::dilate`], so work spanning
//!   a window boundary is charged exactly.
//! * [`FaultPlan::link_outage`] / [`FaultPlan::link_degraded`] — an
//!   inter-segment link is down (transfers wait for the window to end)
//!   or slowed by a factor during a virtual-time window.
//!
//! Everything here is pure arithmetic over the plan; the engine injects
//! the results through the existing cost model (clock, contention,
//! comm), which is what keeps runs bit-deterministic.

/// Why a rank failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// A crash scheduled by the run's [`FaultPlan`].
    Crash,
    /// The rank's program panicked (message preserved).
    Panic(String),
    /// The rank aborted because a peer it was receiving from was lost.
    PeerLost {
        /// The peer whose loss cascaded into this rank.
        peer: usize,
    },
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Crash => write!(f, "planned crash"),
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::PeerLost { peer } => write!(f, "peer rank {peer} lost"),
        }
    }
}

/// Structured description of a rank failure: which rank died, at what
/// virtual time, and why. Carried by [`crate::RunReport::failures`] and
/// by [`RecvError::Failed`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankFailure {
    /// The failed rank.
    pub rank: usize,
    /// Virtual time of the failure in seconds.
    pub at: f64,
    /// What killed the rank.
    pub cause: FailureCause,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} failed at {:.6}s ({})",
            self.rank, self.at, self.cause
        )
    }
}

impl std::error::Error for RankFailure {}

/// Error returned by [`crate::Ctx::recv_deadline`]: either no message
/// arrived by the virtual deadline, or the source rank is known to have
/// failed by then.
#[derive(Debug, Clone, PartialEq)]
pub enum RecvError {
    /// No message from the source arrived at or before `deadline`.
    Timeout {
        /// The virtual deadline that expired.
        deadline: f64,
    },
    /// The source rank failed at or before the deadline.
    Failed(RankFailure),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout { deadline } => {
                write!(f, "no message by virtual deadline {deadline:.6}s")
            }
            RecvError::Failed(failure) => write!(f, "{failure}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// One per-rank slowdown window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Slowdown {
    rank: usize,
    from: f64,
    until: f64,
    factor: f64,
}

/// One inter-segment link fault window (`factor = ∞` means outage).
#[derive(Debug, Clone, Copy, PartialEq)]
struct LinkWindow {
    a: usize,
    b: usize,
    from: f64,
    until: f64,
    factor: f64,
}

/// A deterministic virtual-time fault schedule, attached to a run with
/// [`crate::Engine::with_faults`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    crashes: Vec<(usize, f64)>,
    slowdowns: Vec<Slowdown>,
    links: Vec<LinkWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.slowdowns.is_empty() && self.links.is_empty()
    }

    /// Schedules `rank` to crash when its own virtual clock reaches
    /// `at` seconds. A rank that never advances past `at` (e.g. it
    /// finishes earlier) exits cleanly — a crash only materialises on
    /// activity at or after the crash instant.
    pub fn crash(mut self, rank: usize, at: f64) -> Self {
        assert!(at >= 0.0, "crash time must be non-negative");
        self.crashes.push((rank, at));
        self
    }

    /// During `[from, until)`, computation on `rank` takes `factor`×
    /// its nominal time (`factor ≥ 1`: an external load stealing
    /// cycles; `factor < 1` would model a turbo boost and is allowed).
    pub fn slowdown(mut self, rank: usize, from: f64, until: f64, factor: f64) -> Self {
        assert!(factor > 0.0, "slowdown factor must be positive");
        assert!(until > from, "slowdown window must be non-empty");
        self.slowdowns.push(Slowdown {
            rank,
            from,
            until,
            factor,
        });
        self
    }

    /// The `seg_a`↔`seg_b` inter-segment link is down during
    /// `[from, until)`: transfers starting inside the window wait for
    /// it to end.
    pub fn link_outage(mut self, seg_a: usize, seg_b: usize, from: f64, until: f64) -> Self {
        assert!(until > from, "outage window must be non-empty");
        self.links.push(LinkWindow {
            a: seg_a.min(seg_b),
            b: seg_a.max(seg_b),
            from,
            until,
            factor: f64::INFINITY,
        });
        self
    }

    /// The `seg_a`↔`seg_b` link is `factor`× slower for transfers
    /// starting during `[from, until)` (the factor is sampled at the
    /// transfer's start — a documented approximation).
    pub fn link_degraded(
        mut self,
        seg_a: usize,
        seg_b: usize,
        from: f64,
        until: f64,
        factor: f64,
    ) -> Self {
        assert!(factor >= 1.0, "degradation factor must be ≥ 1");
        assert!(until > from, "degradation window must be non-empty");
        self.links.push(LinkWindow {
            a: seg_a.min(seg_b),
            b: seg_a.max(seg_b),
            from,
            until,
            factor,
        });
        self
    }

    /// Earliest scheduled crash time of `rank`, if any.
    pub fn crash_time(&self, rank: usize) -> Option<f64> {
        self.crashes
            .iter()
            .filter(|&&(r, _)| r == rank)
            .map(|&(_, at)| at)
            .min_by(f64::total_cmp)
    }

    /// Virtual end time of `secs` seconds of nominal compute starting at
    /// `start` on `rank`, stretched through the rank's slowdown windows
    /// by piecewise integration. Overlapping windows apply the largest
    /// factor.
    pub fn dilate(&self, rank: usize, start: f64, secs: f64) -> f64 {
        debug_assert!(secs >= 0.0);
        if secs <= 0.0 {
            return start;
        }
        let wins: Vec<&Slowdown> = self
            .slowdowns
            .iter()
            .filter(|s| s.rank == rank && s.until > start)
            .collect();
        if wins.is_empty() {
            return start + secs;
        }
        let mut t = start;
        let mut remaining = secs; // nominal work-seconds still to do
        loop {
            let factor = wins
                .iter()
                .filter(|w| w.from <= t && t < w.until)
                .map(|w| w.factor)
                .fold(1.0f64, f64::max);
            let next_boundary = wins
                .iter()
                .flat_map(|w| [w.from, w.until])
                .filter(|&b| b > t)
                .fold(f64::INFINITY, f64::min);
            let capacity = (next_boundary - t) / factor;
            if capacity >= remaining {
                return t + remaining * factor;
            }
            remaining -= capacity;
            t = next_boundary;
        }
    }

    /// Adjusts a transfer over the `seg_a`↔`seg_b` link that would start
    /// no earlier than `earliest` and last `duration`: outage windows
    /// push the start past their end, degradation windows stretch the
    /// duration. Returns `(earliest', duration')`.
    pub fn adjust_transfer(
        &self,
        seg_a: usize,
        seg_b: usize,
        earliest: f64,
        duration: f64,
    ) -> (f64, f64) {
        if self.links.is_empty() {
            return (earliest, duration);
        }
        let key = (seg_a.min(seg_b), seg_a.max(seg_b));
        let mut start = earliest;
        loop {
            let mut moved = false;
            for w in &self.links {
                if (w.a, w.b) == key && w.factor.is_infinite() && w.from <= start && start < w.until
                {
                    start = w.until;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        let factor = self
            .links
            .iter()
            .filter(|w| {
                (w.a, w.b) == key && w.factor.is_finite() && w.from <= start && start < w.until
            })
            .map(|w| w.factor)
            .fold(1.0f64, f64::max);
        (start, duration * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.crash_time(3), None);
        assert_eq!(plan.dilate(0, 1.0, 2.0), 3.0);
        assert_eq!(plan.adjust_transfer(0, 1, 5.0, 0.5), (5.0, 0.5));
    }

    #[test]
    fn earliest_crash_wins() {
        let plan = FaultPlan::new().crash(2, 5.0).crash(2, 1.5).crash(1, 9.0);
        assert_eq!(plan.crash_time(2), Some(1.5));
        assert_eq!(plan.crash_time(1), Some(9.0));
        assert_eq!(plan.crash_time(0), None);
    }

    #[test]
    fn dilate_inside_window() {
        // 2x slowdown on [0, 100): 3 s of work takes 6 s.
        let plan = FaultPlan::new().slowdown(0, 0.0, 100.0, 2.0);
        assert!((plan.dilate(0, 1.0, 3.0) - 7.0).abs() < 1e-12);
        // Other ranks unaffected.
        assert_eq!(plan.dilate(1, 1.0, 3.0), 4.0);
    }

    #[test]
    fn dilate_across_window_boundary() {
        // 3x slowdown on [2, 4). Work of 4 s starting at 0:
        // 2 s nominal before the window, then 2/3 s of work fills [2,4),
        // leaving 4 - 2 - 2/3 to run after 4.0 at nominal speed.
        let plan = FaultPlan::new().slowdown(0, 2.0, 4.0, 3.0);
        let end = plan.dilate(0, 0.0, 4.0);
        let expect = 4.0 + (4.0 - 2.0 - 2.0 / 3.0);
        assert!((end - expect).abs() < 1e-12, "end {end} expect {expect}");
    }

    #[test]
    fn dilate_overlapping_windows_take_max_factor() {
        let plan = FaultPlan::new()
            .slowdown(0, 0.0, 10.0, 2.0)
            .slowdown(0, 0.0, 10.0, 4.0);
        assert!((plan.dilate(0, 0.0, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn outage_pushes_transfer_start() {
        let plan = FaultPlan::new().link_outage(0, 1, 1.0, 3.0);
        assert_eq!(plan.adjust_transfer(1, 0, 2.0, 0.5), (3.0, 0.5));
        // Starting before the window is unaffected (the engine reserves
        // from the adjusted earliest; contention may still delay it).
        assert_eq!(plan.adjust_transfer(0, 1, 0.5, 0.2), (0.5, 0.2));
        // Other links unaffected.
        assert_eq!(plan.adjust_transfer(2, 3, 2.0, 0.5), (2.0, 0.5));
    }

    #[test]
    fn chained_outages_push_repeatedly() {
        let plan = FaultPlan::new()
            .link_outage(0, 1, 1.0, 3.0)
            .link_outage(0, 1, 3.0, 5.0);
        assert_eq!(plan.adjust_transfer(0, 1, 2.0, 0.5), (5.0, 0.5));
    }

    #[test]
    fn degradation_stretches_duration() {
        let plan = FaultPlan::new().link_degraded(0, 1, 0.0, 10.0, 4.0);
        assert_eq!(plan.adjust_transfer(0, 1, 2.0, 0.5), (2.0, 2.0));
        // Outside the window: untouched.
        assert_eq!(plan.adjust_transfer(0, 1, 20.0, 0.5), (20.0, 0.5));
    }

    #[test]
    fn display_formats() {
        let f = RankFailure {
            rank: 3,
            at: 1.25,
            cause: FailureCause::Crash,
        };
        assert!(f.to_string().contains("rank 3"));
        assert!(f.to_string().contains("planned crash"));
        let e = RecvError::Timeout { deadline: 2.0 };
        assert!(e.to_string().contains("deadline"));
        assert!(RecvError::Failed(f).to_string().contains("rank 3"));
        assert!(FailureCause::Panic("boom".into())
            .to_string()
            .contains("boom"));
        assert!(FailureCause::PeerLost { peer: 7 }.to_string().contains('7'));
    }
}
