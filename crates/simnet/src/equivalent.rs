//! Lastovetsky & Reddy's equivalent-network framework.
//!
//! The paper (§3.1) assesses heterogeneous algorithms by comparing their
//! efficiency on a heterogeneous network against their homogeneous
//! versions on an *equivalent* homogeneous network, defined by three
//! principles:
//!
//! 1. both environments have the same number of processors;
//! 2. each homogeneous processor's speed equals the **average** speed of
//!    the heterogeneous processors;
//! 3. the aggregate communication characteristics are the same.
//!
//! [`equivalent_homogeneous`] constructs that network from any platform;
//! [`check_equivalence`] verifies the three principles between two
//! platforms within a tolerance (used to validate that the paper's four
//! preset networks are, as claimed, approximately equivalent).

use crate::platform::Platform;

/// Builds the equivalent homogeneous network of a platform: same
/// processor count, every cycle-time set so each node has the *mean*
/// speed, every link set to the mean off-diagonal capacity, one switched
/// segment.
pub fn equivalent_homogeneous(p: &Platform) -> Platform {
    let mean_speed = p.mean_speed(); // Mflop/s
    let cycle_time = 1.0 / mean_speed;
    let memory = p.procs().iter().map(|q| q.memory_mb).sum::<u64>() / p.num_procs() as u64;
    Platform::uniform(
        format!("{}-equivalent-homogeneous", p.name()),
        p.num_procs(),
        cycle_time,
        memory,
        p.mean_link(),
    )
}

/// Result of an equivalence check between two platforms.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// Principle 1: same processor count.
    pub same_proc_count: bool,
    /// Principle 2: relative difference of mean speeds.
    pub mean_speed_rel_diff: f64,
    /// Principle 3: relative difference of mean link capacities.
    pub mean_link_rel_diff: f64,
}

impl EquivalenceReport {
    /// `true` when all three principles hold within `tol` (relative).
    pub fn holds_within(&self, tol: f64) -> bool {
        self.same_proc_count && self.mean_speed_rel_diff <= tol && self.mean_link_rel_diff <= tol
    }
}

/// Checks Lastovetsky's three equivalence principles between platforms.
pub fn check_equivalence(a: &Platform, b: &Platform) -> EquivalenceReport {
    let rel = |x: f64, y: f64| {
        let denom = x.abs().max(y.abs()).max(f64::MIN_POSITIVE);
        (x - y).abs() / denom
    };
    EquivalenceReport {
        same_proc_count: a.num_procs() == b.num_procs(),
        mean_speed_rel_diff: rel(a.mean_speed(), b.mean_speed()),
        mean_link_rel_diff: rel(a.mean_link(), b.mean_link()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn equivalent_of_homogeneous_is_itself() {
        let homo = presets::fully_homogeneous();
        let eq = equivalent_homogeneous(&homo);
        let report = check_equivalence(&homo, &eq);
        assert!(report.holds_within(1e-12));
    }

    #[test]
    fn equivalent_of_heterogeneous_matches_principles() {
        let het = presets::fully_heterogeneous();
        let eq = equivalent_homogeneous(&het);
        assert!(eq.is_compute_homogeneous());
        assert!(eq.is_network_homogeneous());
        let report = check_equivalence(&het, &eq);
        assert!(report.holds_within(1e-12));
    }

    #[test]
    fn papers_four_networks_are_approximately_equivalent() {
        // The paper calls its four networks "approximately equivalent"
        // under the framework. Verify: all have 16 processors, and mean
        // speeds / mean links agree within a modest tolerance.
        let nets = presets::four_networks();
        for n in &nets {
            assert_eq!(n.num_procs(), 16);
        }
        let base = &nets[0];
        for other in &nets[1..] {
            let r = check_equivalence(base, other);
            assert!(r.same_proc_count);
            // The published platforms match speed-wise only to ~36%
            // (0.0131 s/Mflop vs a 117.9 Mflop/s heterogeneous mean) and
            // link-wise to ~66% (pairwise mean 78 ms/Mbit vs 26.64) —
            // "approximately" is generous in the original; we verify the
            // published numbers as they are and bound the drift.
            assert!(
                r.mean_speed_rel_diff < 0.40,
                "{}: speed diff {}",
                other.name(),
                r.mean_speed_rel_diff
            );
            assert!(
                r.mean_link_rel_diff < 0.70,
                "{}: link diff {}",
                other.name(),
                r.mean_link_rel_diff
            );
        }
    }

    #[test]
    fn mismatched_counts_fail() {
        let a = presets::thunderhead(4);
        let b = presets::thunderhead(8);
        let r = check_equivalence(&a, &b);
        assert!(!r.same_proc_count);
        assert!(!r.holds_within(1.0));
    }

    #[test]
    fn equivalent_of_random_platforms_matches_principles_exactly() {
        for seed in [1u64, 7, 1234, 987_654] {
            for p in [2usize, 3, 5, 16] {
                let het = presets::random_heterogeneous(seed, p, 3, 0.002, 0.05);
                let eq = equivalent_homogeneous(&het);
                assert!(eq.is_compute_homogeneous());
                assert!(eq.is_network_homogeneous());
                assert_eq!(eq.num_procs(), het.num_procs());
                let r = check_equivalence(&het, &eq);
                assert!(r.holds_within(1e-12), "seed {seed} p {p}: {r:?}");
            }
        }
    }

    #[test]
    fn single_processor_platform_is_its_own_equivalent() {
        // Degenerate but legal: one node has no off-diagonal links, so
        // the mean link is 0 on both sides and the check must not
        // divide by zero or emit NaN.
        let single = presets::thunderhead(1);
        let eq = equivalent_homogeneous(&single);
        let r = check_equivalence(&single, &eq);
        assert!(r.same_proc_count);
        assert!(r.mean_speed_rel_diff.is_finite());
        assert_eq!(r.mean_link_rel_diff, 0.0);
        assert!(r.holds_within(1e-12));
    }

    #[test]
    fn holds_within_is_inclusive_at_the_tolerance() {
        let r = EquivalenceReport {
            same_proc_count: true,
            mean_speed_rel_diff: 0.25,
            mean_link_rel_diff: 0.10,
        };
        assert!(r.holds_within(0.25));
        assert!(!r.holds_within(0.2499));
        // Count mismatch dominates any tolerance.
        let bad = EquivalenceReport {
            same_proc_count: false,
            mean_speed_rel_diff: 0.0,
            mean_link_rel_diff: 0.0,
        };
        assert!(!bad.holds_within(f64::INFINITY));
    }

    #[test]
    fn check_equivalence_is_symmetric() {
        let a = presets::fully_heterogeneous();
        let b = presets::partially_homogeneous();
        let ab = check_equivalence(&a, &b);
        let ba = check_equivalence(&b, &a);
        assert_eq!(ab, ba);
    }
}
