//! Collective schedule trees.
//!
//! Every collective algorithm in [`crate::coll`] is a communication
//! schedule over a rooted spanning tree of the ranks. This module builds
//! the three tree shapes:
//!
//! * **linear** — a star: every rank is a direct child of the root
//!   (the baseline behaviour of [`crate::comm`]),
//! * **binomial** — recursive halving over contiguous virtual-rank
//!   ranges: the root hands off the far half of its range, then the far
//!   half of what remains, and so on (`⌈log₂ P⌉` depth),
//! * **segment-hierarchical** — two levels matched to the paper's §3.1
//!   network: the lowest rank of each remote segment is a *leader* and
//!   the only rank whose transfer crosses the serial inter-segment link;
//!   leaders fan out to their segment mates over the switched network.
//!
//! Children are stored twice: in *broadcast order* (deepest/remote
//! subtree first, so long dependency chains start earliest) and in
//! *gather order* (ascending rank, which both fixes the receive order
//! and makes tree reduces regroup — not reorder — the linear fold; see
//! `docs/COMMS.md`).
//!
//! Every builder comes in two flavours: the classic full-rank one and a
//! `*_over` variant that spans only an explicit **member set** (the
//! survivors of a [`crate::coll::Membership`] view). Survivor trees are
//! what lets the epoch protocol route *around* known-dead interior
//! relays instead of cascading `PeerLost` down their subtrees; with the
//! full member set the `*_over` builders reduce exactly to the classic
//! shapes.

use crate::platform::Platform;

/// A rooted spanning tree over a subset of ranks `0..p` (all of them for
/// the classic builders), with children kept in both broadcast (send)
/// order and gather (receive/fold) order. Vectors are always indexed by
/// *real* rank; non-member ranks simply have no parent, no children and
/// a subtree of themselves only.
#[derive(Debug, Clone)]
pub struct Tree {
    /// The root rank, stored explicitly: in a survivor tree, non-member
    /// ranks also have `parent == None`, so the root is not derivable
    /// from the parent vector alone.
    root: usize,
    parent: Vec<Option<usize>>,
    /// Children in broadcast send order: deepest/remote subtree first.
    bcast: Vec<Vec<usize>>,
    /// Children in ascending-rank order, for gathers and reduces.
    gather: Vec<Vec<usize>>,
    /// Number of nodes in each rank's subtree (itself included).
    subtree: Vec<usize>,
}

impl Tree {
    fn from_parts(
        p: usize,
        root: usize,
        parent: Vec<Option<usize>>,
        bcast: Vec<Vec<usize>>,
    ) -> Self {
        let gather: Vec<Vec<usize>> = bcast
            .iter()
            .map(|cs| {
                let mut cs = cs.clone();
                cs.sort_unstable();
                cs
            })
            .collect();
        let mut subtree = vec![1usize; p];
        // Accumulate sizes bottom-up: process ranks in reverse BFS order.
        for &r in Self::bfs_order(root, &bcast).iter().rev() {
            if let Some(q) = parent[r] {
                subtree[q] += subtree[r];
            }
        }
        Tree {
            root,
            parent,
            bcast,
            gather,
            subtree,
        }
    }

    fn bfs_order(root: usize, bcast: &[Vec<usize>]) -> Vec<usize> {
        let mut order = Vec::with_capacity(bcast.len());
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(r) = queue.pop_front() {
            order.push(r);
            queue.extend(bcast[r].iter().copied());
        }
        order
    }

    /// The root rank of this schedule.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The parent of `rank` (`None` for the root and for non-members).
    pub fn parent(&self, rank: usize) -> Option<usize> {
        self.parent[rank]
    }

    /// Children of `rank` in broadcast send order.
    pub fn children_bcast(&self, rank: usize) -> &[usize] {
        &self.bcast[rank]
    }

    /// Children of `rank` in ascending-rank (gather/fold) order.
    pub(crate) fn children_gather(&self, rank: usize) -> &[usize] {
        &self.gather[rank]
    }

    /// Number of ranks in `rank`'s subtree, itself included.
    pub(crate) fn subtree_size(&self, rank: usize) -> usize {
        self.subtree[rank]
    }

    /// `true` when `rank` forwards to nobody — the ranks whose chunk
    /// receives can interleave with compute without delaying anyone
    /// (see `coll::broadcast_overlap`).
    pub(crate) fn is_leaf(&self, rank: usize) -> bool {
        self.bcast[rank].is_empty()
    }

    /// The ranks of `node`'s subtree in the exact order a gather relays
    /// them upward: `node` first, then each gather-order child's subtree
    /// recursively. Every rank knows this order from the shared tree, so
    /// the root can reassemble rank-indexed output without any metadata
    /// on the wire.
    pub(crate) fn subtree_order(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.subtree[node]);
        let mut stack = vec![node];
        while let Some(r) = stack.pop() {
            out.push(r);
            // Push gather-order children reversed so they pop in order.
            stack.extend(self.gather[r].iter().rev().copied());
        }
        out
    }

    /// All member ranks, parents before children, following broadcast
    /// order.
    pub(crate) fn preorder_bcast(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.parent.len());
        let mut stack = vec![self.root];
        while let Some(r) = stack.pop() {
            out.push(r);
            stack.extend(self.bcast[r].iter().rev().copied());
        }
        out
    }

    /// All member ranks, children before parents, following gather
    /// order.
    pub(crate) fn postorder_gather(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.parent.len());
        let mut stack = vec![self.root];
        while let Some(r) = stack.pop() {
            out.push(r);
            stack.extend(self.gather[r].iter().copied());
        }
        out.reverse();
        out
    }
}

/// The star schedule: every rank is a direct child of `root`, in
/// ascending rank order (exactly the legacy [`crate::comm`] loops).
pub(crate) fn linear(root: usize, p: usize) -> Tree {
    let members: Vec<usize> = (0..p).collect();
    linear_over(root, &members, p)
}

/// [`linear`] restricted to `members` (ascending, containing `root`):
/// every member is a direct child of `root`, in ascending rank order.
pub(crate) fn linear_over(root: usize, members: &[usize], p: usize) -> Tree {
    debug_assert!(members.contains(&root), "linear_over: root is a member");
    let mut parent = vec![None; p];
    let mut bcast = vec![Vec::new(); p];
    for &r in members {
        if r != root {
            parent[r] = Some(root);
            bcast[root].push(r);
        }
    }
    Tree::from_parts(p, root, parent, bcast)
}

/// The binomial schedule by recursive halving over virtual ranks
/// (`vrank = (rank − root) mod p`): the owner of a contiguous vrank
/// range `[lo, hi)` hands the range starting at `lo + h` — `h` the
/// largest power of two below the range size — to a child, keeps
/// `[lo, lo + h)`, and repeats. Subtrees are contiguous vrank blocks,
/// which is what lets a binomial reduce *regroup* (not reorder) the
/// linear left-fold when the root is rank 0.
pub(crate) fn binomial(root: usize, p: usize) -> Tree {
    let members: Vec<usize> = (0..p).collect();
    binomial_over(root, &members, p)
}

/// [`binomial`] restricted to `members` (ascending, containing `root`):
/// recursive halving over *virtual indices* into the member list,
/// rotated so index 0 is the root. With the full member set the virtual
/// index of rank `r` is `(r − root) mod p`, reproducing [`binomial`]
/// exactly; with survivors removed the halving runs over the compacted
/// survivor list, so the tree never routes through a dead rank.
pub(crate) fn binomial_over(root: usize, members: &[usize], p: usize) -> Tree {
    let m = members.len();
    let k = members
        .iter()
        .position(|&r| r == root)
        .expect("binomial_over: root is a member");
    let to_rank = |v: usize| members[(v + k) % m];
    let mut parent = vec![None; p];
    let mut bcast = vec![Vec::new(); p];
    let mut stack = vec![(0usize, m)];
    while let Some((lo, mut hi)) = stack.pop() {
        while hi - lo > 1 {
            let span = hi - lo;
            // Largest power of two strictly below `span`.
            let h = 1usize << (usize::BITS - 1 - (span - 1).leading_zeros());
            let child = lo + h;
            parent[to_rank(child)] = Some(to_rank(lo));
            bcast[to_rank(lo)].push(to_rank(child));
            stack.push((child, hi));
            hi = child;
        }
    }
    Tree::from_parts(p, root, parent, bcast)
}

/// The two-level schedule matched to the platform's segment map: the
/// root reaches one *leader* (lowest rank) per remote segment — one
/// serial-link crossing per segment — plus its own segment mates; each
/// leader fans out to the rest of its segment over the switched intra-
/// segment network. Broadcast order puts leaders first so the slow
/// serial-link transfers start as early as possible. On a single-segment
/// platform this degenerates to [`linear`].
pub(crate) fn segment_hierarchical(root: usize, platform: &Platform) -> Tree {
    let members: Vec<usize> = (0..platform.num_procs()).collect();
    segment_hierarchical_over(root, platform, &members)
}

/// [`segment_hierarchical`] restricted to `members` (ascending,
/// containing `root`): the leader of each remote segment is its **lowest
/// surviving member**, so a segment whose original leader died simply
/// promotes the next rank instead of stranding the whole segment.
pub(crate) fn segment_hierarchical_over(
    root: usize,
    platform: &Platform,
    members: &[usize],
) -> Tree {
    debug_assert!(
        members.contains(&root),
        "segment_hierarchical_over: root is a member"
    );
    let p = platform.num_procs();
    let root_seg = platform.segment_of(root);
    let mut parent = vec![None; p];
    let mut bcast = vec![Vec::new(); p];
    // Segment id → ascending member ranks.
    let mut segments: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for &r in members {
        segments.entry(platform.segment_of(r)).or_default().push(r);
    }
    let mut own_segment_mates = Vec::new();
    for (seg, seg_members) in &segments {
        if *seg == root_seg {
            own_segment_mates.extend(seg_members.iter().copied().filter(|&r| r != root));
        } else {
            let leader = seg_members[0];
            parent[leader] = Some(root);
            bcast[root].push(leader);
            for &r in &seg_members[1..] {
                parent[r] = Some(leader);
                bcast[leader].push(r);
            }
        }
    }
    // Leaders (pushed above) come first; then the root's own segment.
    for r in own_segment_mates {
        parent[r] = Some(root);
        bcast[root].push(r);
    }
    Tree::from_parts(p, root, parent, bcast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::ProcessorSpec;

    fn spec(seg: usize) -> ProcessorSpec {
        ProcessorSpec {
            name: format!("p{seg}"),
            arch: "x",
            cycle_time: 0.01,
            memory_mb: 64,
            cache_kb: 0,
            segment: seg,
            device: None,
        }
    }

    fn platform_with_segments(segs: &[usize]) -> Platform {
        let n = segs.len();
        let links = vec![vec![1.0; n]; n]
            .into_iter()
            .enumerate()
            .map(|(i, mut row)| {
                row[i] = 0.0;
                row
            })
            .collect();
        Platform::new("segs", segs.iter().map(|&s| spec(s)).collect(), links)
    }

    fn assert_spanning(tree: &Tree, root: usize, p: usize) {
        assert_eq!(tree.parent(root), None);
        let order = tree.subtree_order(root);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..p).collect::<Vec<_>>(),
            "tree must span all ranks"
        );
        assert_eq!(tree.subtree_size(root), p);
        for r in 0..p {
            if r != root {
                let q = tree.parent(r).expect("non-root has a parent");
                assert!(tree.children_bcast(q).contains(&r));
                assert!(tree.children_gather(q).contains(&r));
            }
        }
    }

    #[test]
    fn linear_is_a_star_in_rank_order() {
        let t = linear(0, 5);
        assert_eq!(t.children_bcast(0), &[1, 2, 3, 4]);
        assert_eq!(t.children_gather(0), &[1, 2, 3, 4]);
        for r in 1..5 {
            assert!(t.children_bcast(r).is_empty());
            assert_eq!(t.subtree_size(r), 1);
        }
        assert_spanning(&t, 0, 5);
    }

    #[test]
    fn binomial_recursive_halving_shape() {
        // p = 8, root 0: children of 0 are 4, 2, 1 (broadcast order).
        let t = binomial(0, 8);
        assert_eq!(t.children_bcast(0), &[4, 2, 1]);
        assert_eq!(t.children_gather(0), &[1, 2, 4]);
        assert_eq!(t.children_bcast(4), &[6, 5]);
        assert_eq!(t.children_bcast(2), &[3]);
        assert_eq!(t.subtree_size(4), 4);
        assert_eq!(t.subtree_size(2), 2);
        assert_spanning(&t, 0, 8);
    }

    #[test]
    fn binomial_subtrees_are_contiguous_rank_blocks() {
        for p in [2usize, 3, 5, 8, 13, 16, 17] {
            let t = binomial(0, p);
            for r in 0..p {
                let mut sub = t.subtree_order(r);
                sub.sort_unstable();
                let expect: Vec<usize> = (sub[0]..sub[0] + sub.len()).collect();
                assert_eq!(sub, expect, "p={p} rank={r}: contiguous block");
            }
        }
    }

    #[test]
    fn binomial_depth_is_logarithmic() {
        for p in [2usize, 5, 16, 17, 64] {
            let t = binomial(0, p);
            let mut max_depth = 0;
            for mut r in 0..p {
                let mut d = 0;
                while let Some(q) = t.parent(r) {
                    r = q;
                    d += 1;
                }
                max_depth = max_depth.max(d);
            }
            let bound = usize::BITS - (p - 1).leading_zeros(); // ⌈log₂ p⌉
            assert!(
                max_depth <= bound as usize,
                "p={p}: depth {max_depth} > ⌈log₂ p⌉ = {bound}"
            );
        }
    }

    #[test]
    fn binomial_nonzero_root_spans_via_vranks() {
        let t = binomial(3, 8);
        assert_spanning(&t, 3, 8);
        // Child offsets in vrank space map back mod p: 3+4=7, 3+2=5, 3+1=4.
        assert_eq!(t.children_bcast(3), &[7, 5, 4]);
    }

    #[test]
    fn hierarchical_one_leader_per_remote_segment() {
        // Segments: 0 0 1 1 1 2 2 — root 0 in segment 0.
        let p = platform_with_segments(&[0, 0, 1, 1, 1, 2, 2]);
        let t = segment_hierarchical(0, &p);
        // Leaders 2 and 5 first (broadcast order), then segment mate 1.
        assert_eq!(t.children_bcast(0), &[2, 5, 1]);
        assert_eq!(t.children_gather(0), &[1, 2, 5]);
        assert_eq!(t.children_bcast(2), &[3, 4]);
        assert_eq!(t.children_bcast(5), &[6]);
        assert_eq!(t.subtree_size(2), 3);
        assert_spanning(&t, 0, 7);
    }

    #[test]
    fn hierarchical_single_segment_degenerates_to_linear() {
        let p = platform_with_segments(&[0, 0, 0, 0]);
        let t = segment_hierarchical(0, &p);
        let l = linear(0, 4);
        for r in 0..4 {
            assert_eq!(t.children_bcast(r), l.children_bcast(r));
            assert_eq!(t.parent(r), l.parent(r));
        }
    }

    #[test]
    fn subtree_order_matches_relay_protocol() {
        let t = binomial(0, 8);
        // Rank 4's subtree: itself, then gather-order children's subtrees.
        assert_eq!(t.subtree_order(4), vec![4, 5, 6, 7]);
        assert_eq!(t.subtree_order(2), vec![2, 3]);
    }

    fn assert_spanning_over(tree: &Tree, root: usize, members: &[usize]) {
        assert_eq!(tree.root(), root);
        assert_eq!(tree.parent(root), None);
        let mut order = tree.subtree_order(root);
        order.sort_unstable();
        assert_eq!(order, members, "tree must span exactly the members");
        assert_eq!(tree.subtree_size(root), members.len());
        for &r in members {
            if r != root {
                let q = tree.parent(r).expect("non-root member has a parent");
                assert!(members.contains(&q), "parents are members");
                assert!(tree.children_bcast(q).contains(&r));
            }
        }
    }

    #[test]
    fn over_builders_with_full_set_match_classic_shapes() {
        let members: Vec<usize> = (0..8).collect();
        let (a, b) = (binomial(3, 8), binomial_over(3, &members, 8));
        for r in 0..8 {
            assert_eq!(a.parent(r), b.parent(r));
            assert_eq!(a.children_bcast(r), b.children_bcast(r));
            assert_eq!(a.subtree_size(r), b.subtree_size(r));
        }
        let plat = platform_with_segments(&[0, 0, 1, 1, 1, 2, 2]);
        let members: Vec<usize> = (0..7).collect();
        let (a, b) = (
            segment_hierarchical(0, &plat),
            segment_hierarchical_over(0, &plat, &members),
        );
        for r in 0..7 {
            assert_eq!(a.parent(r), b.parent(r));
            assert_eq!(a.children_bcast(r), b.children_bcast(r));
        }
    }

    #[test]
    fn linear_over_spans_only_members() {
        let t = linear_over(0, &[0, 1, 3, 4], 5);
        assert_eq!(t.children_bcast(0), &[1, 3, 4]);
        assert_eq!(t.parent(2), None);
        assert!(t.children_bcast(2).is_empty());
        assert_spanning_over(&t, 0, &[0, 1, 3, 4]);
    }

    #[test]
    fn binomial_over_routes_around_dead_relay() {
        // In binomial(0, 8), rank 4 relays to subtree {4,5,6,7}. Remove
        // it: the survivor tree must span the other 7 without touching 4.
        let members = vec![0, 1, 2, 3, 5, 6, 7];
        let t = binomial_over(0, &members, 8);
        assert_spanning_over(&t, 0, &members);
        for &r in &members {
            assert!(!t.children_bcast(r).contains(&4), "dead rank never a child");
            assert_ne!(t.parent(r), Some(4), "dead rank never a parent");
        }
        // Halving over the 7 survivors: children of virtual 0 at virtual
        // offsets 4, 2, 1 → ranks 5, 2, 1.
        assert_eq!(t.children_bcast(0), &[5, 2, 1]);
    }

    #[test]
    fn binomial_over_nonzero_root_rotates_member_list() {
        let members = vec![1, 2, 3, 5, 7];
        let t = binomial_over(3, &members, 8);
        assert_spanning_over(&t, 3, &members);
    }

    #[test]
    fn hierarchical_over_promotes_next_surviving_leader() {
        // Segments: 0 0 1 1 1 2 2. Killing rank 2 (segment 1's leader)
        // must promote rank 3, not strand ranks 3 and 4.
        let plat = platform_with_segments(&[0, 0, 1, 1, 1, 2, 2]);
        let members = vec![0, 1, 3, 4, 5, 6];
        let t = segment_hierarchical_over(0, &plat, &members);
        assert_eq!(t.children_bcast(0), &[3, 5, 1]);
        assert_eq!(t.children_bcast(3), &[4]);
        assert_spanning_over(&t, 0, &members);
    }

    #[test]
    fn orders_cover_all_ranks() {
        for p in [1usize, 2, 7, 16] {
            let t = binomial(0, p);
            let pre = t.preorder_bcast();
            let post = t.postorder_gather();
            assert_eq!(pre.len(), p);
            assert_eq!(post.len(), p);
            for r in 0..p {
                assert!(pre.contains(&r));
                assert!(post.contains(&r));
                if let Some(q) = t.parent(r) {
                    let pi = pre.iter().position(|&x| x == r).expect("in preorder");
                    let qi = pre.iter().position(|&x| x == q).expect("in preorder");
                    assert!(qi < pi, "preorder: parent before child");
                    let pi = post.iter().position(|&x| x == r).expect("in postorder");
                    let qi = post.iter().position(|&x| x == q).expect("in postorder");
                    assert!(qi > pi, "postorder: child before parent");
                }
            }
        }
    }
}
