//! Analytic cost model for collective schedules.
//!
//! [`predict`] replays a collective's communication schedule over the
//! platform model *arithmetically* — the same per-message sender latency,
//! `transfer_secs` link charges, and serial inter-segment FIFO
//! reservations the engine applies, in the same program order — and
//! returns the virtual time at which the last rank finishes. For a
//! healthy (fault-free) run rooted at rank 0 that starts with aligned
//! clocks, the prediction equals the engine's measured virtual time
//! exactly; this is what lets the `Auto` selector guarantee it never
//! picks a strictly-dominated algorithm (asserted by the
//! `ablation_collectives` gate).
//!
//! [`predict_over`] extends the replay to **survivor sets**: it rebuilds
//! the schedule over an explicit member list (a
//! [`crate::coll::Membership`] view's survivors) and replays only those
//! ranks, so on a degraded topology — a crash plan whose failures the
//! view has already observed — predicted equals measured exactly, the
//! same guarantee [`predict`] gives healthy runs. This closes the old
//! "fault plans are ignored" approximation for *crash* plans; slowdown
//! and link-fault windows remain unreplayed (predictions assume nominal
//! link and processor speeds), and for roots other than rank 0 the
//! receiver-side FIFO interleaving at rank 0 is not replayed (no
//! algorithm in this repository roots a collective away from rank 0).

use super::schedule::{self, Tree};
use super::{split_chunks, CollAlgorithm, CollOp};
use crate::platform::Platform;
use std::collections::HashMap;

/// FIFO link reservation replay, mirroring
/// [`crate::contention::InterSegmentLinks`] without the locking.
#[derive(Default)]
struct LinkSim {
    busy_until: HashMap<(usize, usize), f64>,
}

impl LinkSim {
    fn reserve(&mut self, seg_a: usize, seg_b: usize, earliest: f64, duration: f64) -> f64 {
        if seg_a == seg_b {
            return earliest;
        }
        let key = (seg_a.min(seg_b), seg_a.max(seg_b));
        let free_at = self.busy_until.get(&key).copied().unwrap_or(0.0);
        let start = earliest.max(free_at);
        self.busy_until.insert(key, start + duration);
        start
    }
}

/// Arrival time of one message, replaying the engine's reservation rule:
/// only messages with rank 0 as an endpoint queue on the serial
/// inter-segment links; everything else pays the raw transfer.
fn arrival(
    platform: &Platform,
    links: &mut LinkSim,
    src: usize,
    dst: usize,
    sent_at: f64,
    duration: f64,
) -> f64 {
    let (sa, sb) = (platform.segment_of(src), platform.segment_of(dst));
    if src == 0 || dst == 0 {
        links.reserve(sa, sb, sent_at, duration) + duration
    } else {
        sent_at + duration
    }
}

/// Predicted virtual completion time (seconds) of one collective of
/// `bits` payload bits under `algorithm` (which must be concrete, not
/// [`CollAlgorithm::Auto`]), rooted at `root`, with all rank clocks at
/// zero. `latency_s` is the per-message sender overhead;
/// `pipeline_chunks` only affects [`CollAlgorithm::PipelinedChunked`].
pub fn predict(
    platform: &Platform,
    latency_s: f64,
    op: CollOp,
    algorithm: CollAlgorithm,
    root: usize,
    bits: u64,
    pipeline_chunks: u32,
) -> f64 {
    let members: Vec<usize> = (0..platform.num_procs()).collect();
    predict_over(
        platform,
        latency_s,
        op,
        algorithm,
        root,
        bits,
        pipeline_chunks,
        &members,
    )
}

/// [`predict`] over an explicit **survivor set**: the schedule is
/// rebuilt over `members` (ascending rank order, containing `root` —
/// the survivors of a [`crate::coll::Membership`] view) and only those
/// ranks are replayed. With every rank a member this is exactly
/// [`predict`]; on a degraded topology it is exact in the same sense —
/// the `*_over` collectives execute precisely this schedule.
#[allow(clippy::too_many_arguments)] // mirrors `predict` plus the member set
pub fn predict_over(
    platform: &Platform,
    latency_s: f64,
    op: CollOp,
    algorithm: CollAlgorithm,
    root: usize,
    bits: u64,
    pipeline_chunks: u32,
    members: &[usize],
) -> f64 {
    debug_assert!(
        algorithm != CollAlgorithm::Auto,
        "predict: resolve Auto first"
    );
    let p = platform.num_procs();
    if p <= 1 || members.len() <= 1 {
        return 0.0;
    }
    let tree = match algorithm {
        CollAlgorithm::Linear => schedule::linear_over(root, members, p),
        CollAlgorithm::BinomialTree => schedule::binomial_over(root, members, p),
        CollAlgorithm::SegmentHierarchical | CollAlgorithm::PipelinedChunked => {
            schedule::segment_hierarchical_over(root, platform, members)
        }
        CollAlgorithm::Auto => unreachable!("checked above"),
    };
    let chunks = if algorithm == CollAlgorithm::PipelinedChunked && op == CollOp::Broadcast {
        split_chunks(bits, pipeline_chunks as usize)
    } else {
        vec![bits]
    };
    match op {
        // A scatter is broadcast-shaped (root fans out one message per
        // child); payload personalisation doesn't change the schedule.
        CollOp::Broadcast | CollOp::Scatter => {
            predict_broadcast(platform, latency_s, &tree, root, &chunks)
        }
        CollOp::Gather => predict_gather(platform, latency_s, &tree, bits, false),
        CollOp::Reduce => predict_gather(platform, latency_s, &tree, bits, true),
        CollOp::Allreduce => predict_allreduce(platform, latency_s, &tree, root, bits),
    }
}

/// Broadcast replay: each node receives chunk `c` from its parent, then
/// forwards it to every broadcast-order child before receiving chunk
/// `c + 1` — which is exactly the pipelining the executor implements.
fn predict_broadcast(
    platform: &Platform,
    latency_s: f64,
    tree: &Tree,
    root: usize,
    chunks: &[u64],
) -> f64 {
    let p = platform.num_procs();
    let k = chunks.len();
    let mut arrivals = vec![vec![0.0f64; k]; p];
    let mut links = LinkSim::default();
    let mut finish = 0.0f64;
    for r in tree.preorder_bcast() {
        let mut clock = 0.0f64;
        for (c, &chunk_bits) in chunks.iter().enumerate() {
            if r != root {
                clock = clock.max(arrivals[r][c]);
            }
            for &child in tree.children_bcast(r) {
                clock += latency_s;
                let dur = platform.transfer_secs(r, child, chunk_bits);
                arrivals[child][c] = arrival(platform, &mut links, r, child, clock, dur);
            }
        }
        finish = finish.max(clock);
    }
    finish
}

/// Gather/reduce replay, children-before-parents: a relay receives every
/// message of each gather-order child's subtree, then relays them (one
/// message per subtree rank — or a single folded partial when `reduce`)
/// to its parent. Receiver-side FIFO reservations happen at the root in
/// its receive order, matching the engine's lazy resolve.
fn predict_gather(
    platform: &Platform,
    latency_s: f64,
    tree: &Tree,
    bits: u64,
    reduce: bool,
) -> f64 {
    let p = platform.num_procs();
    // Messages each rank has sent to its parent: (sent_at, duration).
    let mut upward: Vec<Vec<(f64, f64)>> = vec![Vec::new(); p];
    let mut links = LinkSim::default();
    let mut finish = 0.0f64;
    for r in tree.postorder_gather() {
        let mut clock = 0.0f64;
        for &child in tree.children_gather(r) {
            for &(sent_at, dur) in &upward[child] {
                let a = arrival(platform, &mut links, child, r, sent_at, dur);
                clock = clock.max(a);
            }
        }
        if let Some(parent) = tree.parent(r) {
            let n_msgs = if reduce { 1 } else { tree.subtree_size(r) };
            let dur = platform.transfer_secs(r, parent, bits);
            let mut sends = Vec::with_capacity(n_msgs);
            for _ in 0..n_msgs {
                clock += latency_s;
                sends.push((clock, dur));
            }
            upward[r] = sends;
        }
        finish = finish.max(clock);
    }
    finish
}

/// Fused allreduce replay: the reduce's upward phase (one folded partial
/// per edge, children before parents) followed by the broadcast's
/// downward phase over the **same** tree, sharing one [`LinkSim`] — the
/// root's downward sends reserve the serial links *after* its upward
/// receives, exactly the engine's program order at rank 0. The fold
/// itself is free (host-side), so a size-preserving fold makes this
/// exact.
fn predict_allreduce(
    platform: &Platform,
    latency_s: f64,
    tree: &Tree,
    root: usize,
    bits: u64,
) -> f64 {
    let p = platform.num_procs();
    let mut links = LinkSim::default();
    // Upward: (sent_at, duration) of each rank's single partial.
    let mut up_send: Vec<Option<(f64, f64)>> = vec![None; p];
    let mut up_clock = vec![0.0f64; p];
    for r in tree.postorder_gather() {
        let mut clock = 0.0f64;
        for &child in tree.children_gather(r) {
            let (sent_at, dur) = up_send[child].expect("allreduce replay: child sent a partial");
            let a = arrival(platform, &mut links, child, r, sent_at, dur);
            clock = clock.max(a);
        }
        if let Some(parent) = tree.parent(r) {
            clock += latency_s;
            up_send[r] = Some((clock, platform.transfer_secs(r, parent, bits)));
        }
        up_clock[r] = clock;
    }
    // Downward: each rank resumes from its upward clock, waits for the
    // result from its parent, and forwards it in broadcast order.
    let mut down_arrival = vec![0.0f64; p];
    let mut finish = 0.0f64;
    for r in tree.preorder_bcast() {
        let mut clock = up_clock[r];
        if r != root {
            clock = clock.max(down_arrival[r]);
        }
        for &child in tree.children_bcast(r) {
            clock += latency_s;
            let dur = platform.transfer_secs(r, child, bits);
            down_arrival[child] = arrival(platform, &mut links, r, child, clock, dur);
        }
        finish = finish.max(clock);
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::DEFAULT_MSG_LATENCY_S;
    use crate::presets;

    const L: f64 = DEFAULT_MSG_LATENCY_S;

    #[test]
    fn single_rank_costs_nothing() {
        let platform = crate::platform::Platform::uniform("one", 1, 0.01, 64, 1.0);
        for alg in [
            CollAlgorithm::Linear,
            CollAlgorithm::BinomialTree,
            CollAlgorithm::SegmentHierarchical,
        ] {
            assert_eq!(
                predict(&platform, L, CollOp::Broadcast, alg, 0, 1_000_000, 4),
                0.0
            );
        }
    }

    #[test]
    fn linear_broadcast_cost_on_uniform_platform() {
        // 4 ranks, 10 ms/Mbit, 1 Mbit: root pays 3 latencies; transfers
        // overlap (single switched segment, no FIFO): last arrival is
        // 3L + 0.01.
        let platform = crate::platform::Platform::uniform("u4", 4, 0.01, 64, 10.0);
        let t = predict(
            &platform,
            L,
            CollOp::Broadcast,
            CollAlgorithm::Linear,
            0,
            1_000_000,
            4,
        );
        assert!((t - (3.0 * L + 0.01)).abs() < 1e-12, "got {t}");
    }

    #[test]
    fn linear_gather_cost_on_uniform_platform() {
        // Every worker sends at its own L; transfers overlap; the root's
        // clock ends at the last arrival L + 0.01.
        let platform = crate::platform::Platform::uniform("u4", 4, 0.01, 64, 10.0);
        let t = predict(
            &platform,
            L,
            CollOp::Gather,
            CollAlgorithm::Linear,
            0,
            1_000_000,
            4,
        );
        assert!((t - (L + 0.01)).abs() < 1e-12, "got {t}");
    }

    #[test]
    fn hierarchical_beats_linear_broadcast_on_heterogeneous_network() {
        // The ISSUE gate, at the model level: an endmember-matrix-sized
        // payload (18 × 224 × 32 bits) on the paper's fully heterogeneous
        // network.
        let platform = presets::fully_heterogeneous();
        let bits = 18 * 224 * 32;
        let lin = predict(
            &platform,
            L,
            CollOp::Broadcast,
            CollAlgorithm::Linear,
            0,
            bits,
            4,
        );
        let hier = predict(
            &platform,
            L,
            CollOp::Broadcast,
            CollAlgorithm::SegmentHierarchical,
            0,
            bits,
            4,
        );
        assert!(
            hier < lin,
            "hierarchical {hier} must beat linear {lin} on fully_heterogeneous"
        );
    }

    #[test]
    fn hierarchical_equals_linear_on_single_segment() {
        let platform = presets::partially_heterogeneous();
        for op in [CollOp::Broadcast, CollOp::Gather, CollOp::Reduce] {
            let lin = predict(&platform, L, op, CollAlgorithm::Linear, 0, 129_024, 4);
            let hier = predict(
                &platform,
                L,
                op,
                CollAlgorithm::SegmentHierarchical,
                0,
                129_024,
                4,
            );
            assert!(
                (lin - hier).abs() < 1e-12,
                "{op:?}: single-segment hierarchical ({hier}) == linear ({lin})"
            );
        }
    }

    #[test]
    fn binomial_broadcast_wins_at_small_sizes_on_uniform_platform() {
        // Latency-dominated regime: log-depth beats the root's P−1
        // serialized send overheads.
        let platform = crate::platform::Platform::uniform("u16", 16, 0.01, 64, 1.0);
        let lin = predict(
            &platform,
            L,
            CollOp::Broadcast,
            CollAlgorithm::Linear,
            0,
            64,
            4,
        );
        let bin = predict(
            &platform,
            L,
            CollOp::Broadcast,
            CollAlgorithm::BinomialTree,
            0,
            64,
            4,
        );
        assert!(bin < lin, "binomial {bin} < linear {lin} for tiny payloads");
    }

    #[test]
    fn fused_allreduce_beats_gather_plus_broadcast_on_heterogeneous_network() {
        // The PR 4 gate at the model level: one candidate-sized payload
        // folded up and fanned back down a single tree must beat a full
        // linear gather followed by a full linear broadcast.
        let platform = presets::fully_heterogeneous();
        let bits = (32 + 32 + 64 + 224 * 32) as u64; // one scored candidate
        let split = predict(
            &platform,
            L,
            CollOp::Gather,
            CollAlgorithm::Linear,
            0,
            bits,
            4,
        ) + predict(
            &platform,
            L,
            CollOp::Broadcast,
            CollAlgorithm::Linear,
            0,
            bits,
            4,
        );
        for alg in [
            CollAlgorithm::BinomialTree,
            CollAlgorithm::SegmentHierarchical,
        ] {
            let fused = predict(&platform, L, CollOp::Allreduce, alg, 0, bits, 4);
            assert!(
                fused < split,
                "{alg}: fused {fused} must beat split gather+bcast {split}"
            );
        }
    }

    #[test]
    fn allreduce_single_segment_hierarchical_equals_linear() {
        let platform = presets::partially_heterogeneous();
        let lin = predict(
            &platform,
            L,
            CollOp::Allreduce,
            CollAlgorithm::Linear,
            0,
            7_296,
            4,
        );
        let hier = predict(
            &platform,
            L,
            CollOp::Allreduce,
            CollAlgorithm::SegmentHierarchical,
            0,
            7_296,
            4,
        );
        assert!((lin - hier).abs() < 1e-12, "lin {lin} vs hier {hier}");
    }

    #[test]
    fn allreduce_is_at_least_the_reduce_cost() {
        for platform in presets::four_networks() {
            for alg in [
                CollAlgorithm::Linear,
                CollAlgorithm::BinomialTree,
                CollAlgorithm::SegmentHierarchical,
            ] {
                let red = predict(&platform, L, CollOp::Reduce, alg, 0, 7_296, 4);
                let all = predict(&platform, L, CollOp::Allreduce, alg, 0, 7_296, 4);
                assert!(
                    all >= red - 1e-15,
                    "{}/{alg}: allreduce {all} < reduce {red}",
                    platform.name()
                );
            }
        }
    }

    #[test]
    fn pipelined_tracks_hierarchical_tree_with_chunked_charges() {
        // One chunk ⇒ identical to the plain hierarchical broadcast.
        let platform = presets::fully_heterogeneous();
        let one = predict(
            &platform,
            L,
            CollOp::Broadcast,
            CollAlgorithm::PipelinedChunked,
            0,
            129_024,
            1,
        );
        let hier = predict(
            &platform,
            L,
            CollOp::Broadcast,
            CollAlgorithm::SegmentHierarchical,
            0,
            129_024,
            4,
        );
        assert!((one - hier).abs() < 1e-12, "k=1 pipelined == hierarchical");
    }
}
