//! The deterministic membership/epoch protocol for survivor-set
//! collectives.
//!
//! A fault-tolerant master cannot keep tree collectives alive with the
//! classic schedules: once an interior relay crashes, every later round
//! routed through it loses the whole subtree (`docs/COMMS.md`, failure
//! semantics). This module provides the agreement layer that fixes it:
//!
//! * [`Membership`] — an epoch-stamped alive-set view. The master owns
//!   the authoritative copy and bumps the epoch on every observed
//!   [`RankFailure`]; workers rebuild their copy from the `(epoch,
//!   survivors)` header the master piggybacks on the first send of each
//!   round ([`Membership::from_survivors`]).
//! * `*_over` collectives — [`broadcast_over`], [`gather_over`],
//!   [`reduce_over`], [`allreduce_over`]: the same wire protocols as
//!   their classic counterparts, but every schedule (linear, binomial,
//!   segment-hierarchical, pipelined) is rebuilt over the view's
//!   survivor set, so known-dead relays are routed *around*. With every
//!   rank alive the schedules — and therefore the bits and virtual
//!   times — are identical to the classic collectives.
//! * [`Stamped`] + [`recv_epoch`] — epoch validation for composed
//!   protocols: messages carrying a stamp from a superseded view are
//!   rejected with a structured [`CollError::EpochMismatch`] instead of
//!   corrupting the current round.
//!
//! Everything here is deterministic: views only change when their owner
//! observes a failure (a virtual-time event), schedules are pure
//! functions of `(view, algorithm, platform)`, and
//! [`crate::coll::predict_over`] replays the survivor schedule exactly.

use super::schedule::{self, Tree};
use super::{
    broadcast_pipelined, cost, run_broadcast_tree, run_gather, run_reduce_tree, CollAlgorithm,
    CollError, CollOp, CollectiveChoice, CollectiveConfig, GatherEntry,
};
use crate::engine::{Ctx, Wire};
use crate::faults::{FailureCause, RankFailure};
use crate::platform::Platform;

/// An epoch-stamped view of which ranks are alive.
///
/// The epoch is a monotone counter that bumps on every *newly* observed
/// failure, so two views with the same epoch (derived from the same
/// observation sequence) agree on the survivor set — the property the
/// `*_over` collectives rely on when every participant passes the same
/// view.
#[derive(Debug, Clone, PartialEq)]
pub struct Membership {
    epoch: u64,
    alive: Vec<bool>,
    /// Recorded failure per dead rank; `None` for views rebuilt from a
    /// wire header, which carries the survivor set but not the causes.
    failures: Vec<Option<RankFailure>>,
}

impl Membership {
    /// The initial view: epoch 0, every rank alive.
    pub fn new(num_ranks: usize) -> Self {
        Membership {
            epoch: 0,
            alive: vec![true; num_ranks],
            failures: vec![None; num_ranks],
        }
    }

    /// Rebuilds a view from an `(epoch, survivors)` wire header.
    /// Failure causes are unknown to the receiver, so
    /// [`Membership::lost_entry`] synthesizes them on demand.
    pub fn from_survivors(epoch: u64, num_ranks: usize, survivors: &[usize]) -> Self {
        let mut alive = vec![false; num_ranks];
        for &r in survivors {
            alive[r] = true;
        }
        Membership {
            epoch,
            alive,
            failures: vec![None; num_ranks],
        }
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total rank count the view covers (alive or not).
    pub fn num_ranks(&self) -> usize {
        self.alive.len()
    }

    /// `true` while `rank` has no observed failure in this view.
    pub fn is_alive(&self, rank: usize) -> bool {
        self.alive[rank]
    }

    /// The surviving ranks, ascending.
    pub fn survivors(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&r| self.alive[r]).collect()
    }

    /// Number of surviving ranks.
    pub fn num_survivors(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Observes a failure: marks the rank dead, records the cause and
    /// bumps the epoch. Returns `false` (and changes nothing) when the
    /// rank was already dead in this view — re-observing the same
    /// permanent failure must not advance the epoch.
    pub fn observe_failure(&mut self, failure: &RankFailure) -> bool {
        let r = failure.rank;
        if !self.alive[r] {
            return false;
        }
        self.alive[r] = false;
        self.failures[r] = Some(failure.clone());
        self.epoch += 1;
        true
    }

    /// The recorded failure of a dead rank, when the view observed it
    /// directly (views rebuilt from a wire header have none).
    pub fn failure_of(&self, rank: usize) -> Option<&RankFailure> {
        self.failures[rank].as_ref()
    }

    /// The failure record a gather reports for a rank outside the
    /// survivor set: the observed one when recorded, otherwise a
    /// synthesized `PeerLost` (deterministic — wire-rebuilt views know
    /// *that* a rank is gone, not when or why).
    pub fn lost_entry(&self, rank: usize) -> RankFailure {
        debug_assert!(!self.alive[rank], "lost_entry: rank {rank} is alive");
        self.failures[rank].clone().unwrap_or(RankFailure {
            rank,
            at: 0.0,
            cause: FailureCause::PeerLost { peer: rank },
        })
    }

    /// Wire size in bits of this view's `(epoch, survivors)` header: a
    /// 64-bit epoch plus 16 bits per survivor — the charge a master pays
    /// to piggyback the view on the first send of a round.
    pub fn header_bits(&self) -> u64 {
        64 + 16 * self.num_survivors() as u64
    }
}

/// Messages that may carry an epoch stamp, for validation with
/// [`recv_epoch`]. Return `None` from unstamped variants (control
/// traffic that is epoch-agnostic).
pub trait Stamped {
    /// The epoch this message was sent under, if stamped.
    fn stamp(&self) -> Option<u64>;
}

/// Receives one message from `src` and validates its stamp against the
/// receiver's view epoch. Unstamped messages and matching stamps pass;
/// a mismatch consumes (drops) the message and returns the structured
/// [`CollError::EpochMismatch`] — `got < expected` is *stale* traffic
/// from a superseded view (callers typically loop and keep receiving),
/// `got > expected` means this rank's view is behind, a protocol
/// violation.
///
/// Uses plain [`Ctx::recv`], so a dead `src` unwinds as `PeerLost`;
/// protocols that must observe peer death as a value keep using
/// [`Ctx::recv_deadline`] and validate stamps themselves.
pub fn recv_epoch<M: Wire + Stamped>(
    ctx: &mut Ctx<M>,
    src: usize,
    expected: u64,
) -> Result<M, CollError> {
    let msg = ctx.recv(src);
    match msg.stamp() {
        None => Ok(msg),
        Some(e) if e == expected => Ok(msg),
        Some(got) => Err(CollError::EpochMismatch { expected, got }),
    }
}

fn check_member(view: &Membership, rank: usize) -> Result<(), CollError> {
    if view.is_alive(rank) {
        Ok(())
    } else {
        Err(CollError::NotAMember { rank })
    }
}

/// [`super::select`] over a survivor set: resolves a requested algorithm
/// to the concrete one that will run and its predicted cost on the
/// degraded topology ([`cost::predict_over`]). Deterministic in its
/// arguments, so every surviving rank resolves identically.
#[allow(clippy::too_many_arguments)] // mirrors `select` plus the member set
pub fn select_over(
    platform: &Platform,
    latency_s: f64,
    op: CollOp,
    requested: CollAlgorithm,
    root: usize,
    bits: u64,
    pipeline_chunks: u32,
    members: &[usize],
) -> (CollAlgorithm, f64) {
    let normalize = |alg: CollAlgorithm| match (op, alg) {
        (CollOp::Broadcast, a) => a,
        (_, CollAlgorithm::PipelinedChunked) => CollAlgorithm::SegmentHierarchical,
        (_, a) => a,
    };
    let predict = |alg| {
        cost::predict_over(
            platform,
            latency_s,
            op,
            alg,
            root,
            bits,
            pipeline_chunks,
            members,
        )
    };
    if requested != CollAlgorithm::Auto {
        let alg = normalize(requested);
        return (alg, predict(alg));
    }
    if bits == 0 {
        // Same rule as `select`: a zero hint carries no size
        // information, fall back to the baseline.
        return (CollAlgorithm::Linear, predict(CollAlgorithm::Linear));
    }
    let candidates: &[CollAlgorithm] = match op {
        CollOp::Broadcast => &[
            CollAlgorithm::Linear,
            CollAlgorithm::BinomialTree,
            CollAlgorithm::SegmentHierarchical,
            CollAlgorithm::PipelinedChunked,
        ],
        _ => &[
            CollAlgorithm::Linear,
            CollAlgorithm::BinomialTree,
            CollAlgorithm::SegmentHierarchical,
        ],
    };
    let mut best = CollAlgorithm::Linear;
    let mut best_cost = f64::INFINITY;
    for &alg in candidates {
        let cost = predict(alg);
        // Strict `<` keeps the earliest candidate on ties, like `select`.
        if cost < best_cost {
            best = alg;
            best_cost = cost;
        }
    }
    (best, best_cost)
}

/// Resolves over the survivor set on every member identically and
/// records the choice when rank 0 participates (rank 0's log is the
/// canonical one the engine collects).
fn resolve_and_log_over<M: Wire>(
    ctx: &mut Ctx<M>,
    op: CollOp,
    requested: CollAlgorithm,
    root: usize,
    bits_hint: u64,
    pipeline_chunks: u32,
    view: &Membership,
) -> CollAlgorithm {
    let (algorithm, predicted_secs) = select_over(
        ctx.platform(),
        ctx.msg_latency_s(),
        op,
        requested,
        root,
        bits_hint,
        pipeline_chunks,
        &view.survivors(),
    );
    if ctx.rank() == 0 {
        ctx.log_collective(CollectiveChoice {
            op,
            requested,
            algorithm,
            bits: bits_hint,
            predicted_secs,
        });
    }
    algorithm
}

/// Resolves (and, on rank 0, logs) one collective decision over a
/// survivor set — the driver-facing form of the resolution the `*_over`
/// collectives do internally, for protocols (like `hetero::ft`) that
/// run their own wire protocol over the survivor [`Tree`] but want the
/// same cost-model-driven choice and [`CollectiveChoice`] observability.
/// Deterministic in its arguments, so every participant that calls it
/// with the same view resolves identically.
pub fn resolve_over<M: Wire>(
    ctx: &mut Ctx<M>,
    op: CollOp,
    requested: CollAlgorithm,
    root: usize,
    view: &Membership,
    bits_hint: u64,
    pipeline_chunks: u32,
) -> CollAlgorithm {
    resolve_and_log_over(ctx, op, requested, root, bits_hint, pipeline_chunks, view)
}

/// Builds the concrete schedule [`Tree`] for `algorithm` over the view's
/// survivor set. [`CollAlgorithm::PipelinedChunked`] shares the
/// segment-hierarchical tree; [`CollAlgorithm::Auto`] must be resolved
/// to a concrete algorithm first (e.g. via [`resolve_over`]).
pub fn tree_over<M: Wire>(
    ctx: &Ctx<M>,
    algorithm: CollAlgorithm,
    root: usize,
    view: &Membership,
) -> Tree {
    build_tree_over(ctx, algorithm, root, view)
}

fn build_tree_over<M: Wire>(
    ctx: &Ctx<M>,
    algorithm: CollAlgorithm,
    root: usize,
    view: &Membership,
) -> Tree {
    let p = ctx.num_ranks();
    let members = view.survivors();
    match algorithm {
        CollAlgorithm::Linear => schedule::linear_over(root, &members, p),
        CollAlgorithm::BinomialTree => schedule::binomial_over(root, &members, p),
        CollAlgorithm::SegmentHierarchical | CollAlgorithm::PipelinedChunked => {
            schedule::segment_hierarchical_over(root, ctx.platform(), &members)
        }
        CollAlgorithm::Auto => unreachable!("selection resolved before building"),
    }
}

/// [`super::broadcast`] over a [`Membership`] view: only the view's
/// survivors participate (every survivor must call; known-dead ranks are
/// routed around). The root passes `Some(msg)`, every other survivor
/// `None`; all participants return the payload. Every participant must
/// pass the *same* view and `bits_hint` or schedules would disagree.
pub fn broadcast_over<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    cfg: &CollectiveConfig,
    root: usize,
    view: &Membership,
    msg: Option<M>,
    bits_hint: u64,
) -> Result<M, CollError> {
    check_member(view, root)?;
    check_member(view, ctx.rank())?;
    let algorithm = resolve_and_log_over(
        ctx,
        CollOp::Broadcast,
        cfg.broadcast,
        root,
        bits_hint,
        cfg.pipeline_chunks,
        view,
    );
    let tree = build_tree_over(ctx, algorithm, root, view);
    if algorithm == CollAlgorithm::PipelinedChunked {
        return broadcast_pipelined(ctx, &tree, msg, cfg.pipeline_chunks);
    }
    run_broadcast_tree(ctx, &tree, msg)
}

/// [`super::gather`] over a [`Membership`] view: survivors contribute
/// over the survivor tree; the root's rank-indexed result reports every
/// known-dead rank as [`GatherEntry::Lost`] with the view's recorded
/// failure ([`Membership::lost_entry`]) — zero subtree loss for known
/// failures, because no schedule edge touches a dead rank.
pub fn gather_over<M: Wire>(
    ctx: &mut Ctx<M>,
    cfg: &CollectiveConfig,
    root: usize,
    view: &Membership,
    msg: M,
    bits_hint: u64,
) -> Result<Option<Vec<GatherEntry<M>>>, CollError> {
    check_member(view, root)?;
    check_member(view, ctx.rank())?;
    let algorithm = resolve_and_log_over(
        ctx,
        CollOp::Gather,
        cfg.gather,
        root,
        bits_hint,
        cfg.pipeline_chunks,
        view,
    );
    let tree = build_tree_over(ctx, algorithm, root, view);
    Ok(run_gather(ctx, &tree, root, msg, Some(view)))
}

/// [`super::reduce`] over a [`Membership`] view: survivors fold over the
/// survivor tree (known-dead ranks contribute nothing and relay
/// nothing). Fold-order caveats are those of [`super::reduce`], applied
/// to the survivor list.
pub fn reduce_over<M: Wire>(
    ctx: &mut Ctx<M>,
    cfg: &CollectiveConfig,
    root: usize,
    view: &Membership,
    msg: M,
    fold: impl Fn(M, M) -> M,
    bits_hint: u64,
) -> Result<Option<M>, CollError> {
    check_member(view, root)?;
    check_member(view, ctx.rank())?;
    let algorithm = resolve_and_log_over(
        ctx,
        CollOp::Reduce,
        cfg.reduce,
        root,
        bits_hint,
        cfg.pipeline_chunks,
        view,
    );
    if algorithm == CollAlgorithm::Linear {
        // The legacy shape over survivors: linear gather + free
        // rank-order fold, skipping the known-dead (Lost) entries.
        let tree = schedule::linear_over(root, &view.survivors(), ctx.num_ranks());
        return Ok(
            run_gather(ctx, &tree, root, msg, Some(view)).map(|entries| {
                let mut it = entries.into_iter().filter_map(GatherEntry::into_msg);
                let first = it.next().expect("reduce_over: a surviving contribution");
                it.fold(first, fold)
            }),
        );
    }
    let tree = build_tree_over(ctx, algorithm, root, view);
    Ok(run_reduce_tree(ctx, &tree, msg, fold))
}

/// [`super::allreduce`] over a [`Membership`] view: survivors fold up
/// and fan back down the survivor tree; every survivor returns the
/// folded value. The fold contract (associative, size-preserving; see
/// [`super::allreduce`]) applies to the survivor list.
pub fn allreduce_over<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    cfg: &CollectiveConfig,
    root: usize,
    view: &Membership,
    msg: M,
    fold: impl Fn(M, M) -> M,
    bits_hint: u64,
) -> Result<M, CollError> {
    check_member(view, root)?;
    check_member(view, ctx.rank())?;
    let algorithm = resolve_and_log_over(
        ctx,
        CollOp::Allreduce,
        cfg.allreduce,
        root,
        bits_hint,
        cfg.pipeline_chunks,
        view,
    );
    let tree = build_tree_over(ctx, algorithm, root, view);
    Ok(super::run_allreduce_tree(ctx, &tree, msg, fold))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failure(rank: usize, at: f64) -> RankFailure {
        RankFailure {
            rank,
            at,
            cause: FailureCause::Crash,
        }
    }

    #[test]
    fn epoch_bumps_once_per_newly_observed_failure() {
        let mut view = Membership::new(6);
        assert_eq!(view.epoch(), 0);
        assert_eq!(view.num_survivors(), 6);
        assert!(view.observe_failure(&failure(3, 1.0)));
        assert_eq!(view.epoch(), 1);
        assert!(!view.is_alive(3));
        // Re-observing the same permanent failure changes nothing.
        assert!(!view.observe_failure(&failure(3, 1.0)));
        assert_eq!(view.epoch(), 1);
        assert!(view.observe_failure(&failure(1, 2.0)));
        assert_eq!(view.epoch(), 2);
        assert_eq!(view.survivors(), vec![0, 2, 4, 5]);
        assert_eq!(view.failure_of(3), Some(&failure(3, 1.0)));
    }

    #[test]
    fn wire_rebuilt_view_matches_survivor_set() {
        let mut owner = Membership::new(5);
        owner.observe_failure(&failure(2, 0.5));
        let rebuilt = Membership::from_survivors(owner.epoch(), 5, &owner.survivors());
        assert_eq!(rebuilt.epoch(), owner.epoch());
        assert_eq!(rebuilt.survivors(), owner.survivors());
        // Causes don't travel on the wire; lost entries are synthesized.
        assert_eq!(rebuilt.failure_of(2), None);
        assert_eq!(
            rebuilt.lost_entry(2).cause,
            FailureCause::PeerLost { peer: 2 }
        );
        // The owner reports the observed failure verbatim.
        assert_eq!(owner.lost_entry(2), failure(2, 0.5));
    }

    #[test]
    fn header_bits_charge_epoch_plus_survivors() {
        let mut view = Membership::new(8);
        assert_eq!(view.header_bits(), 64 + 16 * 8);
        view.observe_failure(&failure(7, 1.0));
        assert_eq!(view.header_bits(), 64 + 16 * 7);
    }

    #[test]
    fn single_survivor_view_is_well_formed() {
        let view = Membership::from_survivors(15, 16, &[3]);
        assert_eq!(view.epoch(), 15);
        assert_eq!(view.num_ranks(), 16);
        assert_eq!(view.num_survivors(), 1);
        assert_eq!(view.survivors(), vec![3]);
        for r in 0..16 {
            assert_eq!(view.is_alive(r), r == 3, "rank {r}");
        }
        // Header: 64-bit epoch plus one 16-bit survivor entry.
        assert_eq!(view.header_bits(), 64 + 16);
        // Dead ranks synthesize deterministic PeerLost entries.
        assert_eq!(view.lost_entry(0).cause, FailureCause::PeerLost { peer: 0 });
    }

    #[test]
    fn single_survivor_collectives_are_identity_operations() {
        // A view reduced to its root: every *_over collective must
        // complete locally — no traffic, payload returned verbatim.
        use crate::engine::{Engine, WireVec};
        let platform = crate::presets::fully_heterogeneous();
        let cfg = crate::coll::CollectiveConfig::uniform(CollAlgorithm::SegmentHierarchical);
        let report = Engine::new(platform).run(move |ctx| {
            if ctx.rank() != 0 {
                return None;
            }
            let view = Membership::from_survivors(15, 16, &[0]);
            let b = broadcast_over(ctx, &cfg, 0, &view, Some(WireVec(vec![9u32; 4])), 128)
                .expect("sole member broadcasts to itself");
            let a = allreduce_over(
                ctx,
                &cfg,
                0,
                &view,
                WireVec(vec![7u32; 4]),
                |x, y| WireVec(x.0.iter().zip(&y.0).map(|(p, q)| p + q).collect()),
                128,
            )
            .expect("sole member folds only itself");
            let g = gather_over(ctx, &cfg, 0, &view, WireVec(vec![1u32]), 32)
                .expect("sole member gathers itself")
                .expect("the sole member is the root");
            Some((b.0, a.0, g.len(), ctx.elapsed()))
        });
        let (b, a, g_len, _elapsed) = report.result(0).clone().expect("root ran");
        assert_eq!(b, vec![9u32; 4]);
        assert_eq!(a, vec![7u32; 4], "nothing to fold but the own payload");
        // The gather is rank-indexed: 16 entries, 15 of them Lost.
        assert_eq!(g_len, 16);
    }

    #[test]
    fn epoch_bumps_on_the_final_observed_failure() {
        // Observing failures down to a single survivor: the *last*
        // observation (the round that empties the view to one member)
        // bumps the epoch exactly like every earlier one.
        let mut view = Membership::new(4);
        for (i, dead) in [3usize, 1, 2].iter().enumerate() {
            assert!(view.observe_failure(&failure(*dead, i as f64)));
            assert_eq!(view.epoch(), i as u64 + 1);
        }
        assert_eq!(view.num_survivors(), 1);
        assert_eq!(view.survivors(), vec![0]);
        assert_eq!(view.epoch(), 3, "final round bumped the epoch");
        // Re-observing any of them after the final round is inert.
        assert!(!view.observe_failure(&failure(2, 9.0)));
        assert_eq!(view.epoch(), 3);
    }

    #[test]
    fn from_survivors_round_trips_through_itself() {
        let mut owner = Membership::new(9);
        owner.observe_failure(&failure(4, 0.25));
        owner.observe_failure(&failure(7, 0.50));
        let once = Membership::from_survivors(owner.epoch(), owner.num_ranks(), &owner.survivors());
        let twice = Membership::from_survivors(once.epoch(), once.num_ranks(), &once.survivors());
        // The wire round-trip is idempotent and loses nothing but the
        // failure causes: epoch, rank count, survivor set and header
        // charge all survive both hops.
        assert_eq!(once, twice);
        assert_eq!(twice.epoch(), owner.epoch());
        assert_eq!(twice.num_ranks(), owner.num_ranks());
        assert_eq!(twice.survivors(), owner.survivors());
        assert_eq!(twice.header_bits(), owner.header_bits());
        // Survivor order is normalized: a shuffled survivor list
        // rebuilds the identical view.
        let shuffled = Membership::from_survivors(owner.epoch(), 9, &[8, 0, 5, 3, 6, 2, 1]);
        assert_eq!(shuffled, once);
    }

    #[test]
    fn select_over_full_set_matches_select() {
        let platform = crate::presets::fully_heterogeneous();
        let members: Vec<usize> = (0..platform.num_procs()).collect();
        for op in [CollOp::Broadcast, CollOp::Gather, CollOp::Allreduce] {
            for requested in [CollAlgorithm::Auto, CollAlgorithm::SegmentHierarchical] {
                let classic = super::super::select(&platform, 0.001, op, requested, 0, 129_024, 4);
                let over = select_over(&platform, 0.001, op, requested, 0, 129_024, 4, &members);
                assert_eq!(classic, over, "{op}/{requested}");
            }
        }
    }
}
