//! Topology-aware collective communication with cost-model-driven
//! algorithm selection.
//!
//! The paper's heterogeneous networks (§3.1, Tables 1–2) are switched
//! segments joined by *serial* inter-segment links, so a flat linear
//! collective rooted at rank 0 pays O(P) root-serialized latency and
//! queues every cross-segment transfer on the same FIFO links. This
//! module provides pluggable collective algorithms, all expressed
//! through the ordinary [`Ctx`] send/recv primitives — virtual-time
//! costs, FIFO contention and fault plans apply unchanged:
//!
//! * [`CollAlgorithm::Linear`] — the baseline star schedule (bit- and
//!   timing-identical to the legacy [`crate::comm`] loops),
//! * [`CollAlgorithm::BinomialTree`] — `⌈log₂ P⌉`-depth recursive
//!   halving; wins in the latency-dominated small-message regime,
//! * [`CollAlgorithm::SegmentHierarchical`] — one *leader* per remote
//!   segment crosses the serial link exactly once, then fans out over
//!   the switched intra-segment network; wins for large payloads on
//!   multi-segment platforms,
//! * [`CollAlgorithm::PipelinedChunked`] — broadcast only: the payload
//!   streams down the hierarchical tree in [`CollectiveConfig::
//!   pipeline_chunks`] chunks so a leader forwards chunk `c` while
//!   chunk `c + 1` is still crossing the serial link,
//! * [`CollAlgorithm::Auto`] — evaluates the exact analytic cost of
//!   each candidate via [`predict`] and picks the cheapest; the choice
//!   is recorded in [`crate::RunReport::collectives`]. A `bits_hint` of
//!   zero carries no size information, so `Auto` falls back to the
//!   linear baseline instead of ranking schedules on a meaningless
//!   payload.
//!
//! Two fused entry points build on the same schedules:
//!
//! * [`allreduce`] — reduce + broadcast fused onto **one** tree: partials
//!   fold upward through the gather edges and the result fans out down
//!   the broadcast edges of the same schedule, so every rank learns the
//!   folded value in roughly twice the one-way tree depth instead of a
//!   full gather followed by a full broadcast;
//! * [`broadcast_overlap`] — a [`CollAlgorithm::PipelinedChunked`]
//!   broadcast that hands each delivered chunk to a per-chunk callback,
//!   letting leaf ranks start computing while later chunks are still in
//!   flight.
//!
//! **Selection must be rank-uniform.** The `bits_hint` argument of the
//! configurable collectives drives `Auto` selection (and nothing else);
//! every rank must pass the same value or ranks would disagree on the
//! schedule and deadlock. Transfers always charge actual payload sizes.
//!
//! **Failure semantics.** The root observes failed contributors as
//! explicit [`GatherEntry::Lost`] entries instead of aborting. Interior
//! tree relays use plain [`Ctx::recv`], so a crashed child cascades as a
//! structured `PeerLost` failure through its ancestors (recorded in the
//! report, never a process abort) and the root marks that whole subtree
//! lost. Link outages kill no ranks: every algorithm completes under
//! link-fault plans, just later.
//!
//! **Membership/epoch protocol.** Subtree loss is the price of routing
//! through a rank that is *already* dead. The epoch layer removes it
//! for known failures: a [`Membership`] view tracks the alive set
//! (epoch bumps on every observed [`RankFailure`]), and the `*_over`
//! collectives ([`broadcast_over`], [`gather_over`], [`reduce_over`],
//! [`allreduce_over`]) rebuild every schedule over the view's survivor
//! set, so known-dead interior relays are routed around instead of
//! cascading `PeerLost` down their subtrees. Messages stamped via the
//! [`Stamped`] trait are validated with [`recv_epoch`]: traffic from a
//! superseded view is rejected with a structured
//! [`CollError::EpochMismatch`] instead of corrupting the round. A rank
//! that dies *mid*-collective — after the view was agreed — still
//! degrades with the classic subtree-loss semantics until a new view
//! observes it. See `docs/COMMS.md`.

mod cost;
mod epoch;
mod schedule;

pub use cost::{predict, predict_over};
pub use epoch::{
    allreduce_over, broadcast_over, gather_over, recv_epoch, reduce_over, resolve_over,
    select_over, tree_over, Membership, Stamped,
};
pub use schedule::Tree;

use crate::engine::{Ctx, Wire};
use crate::faults::{FailureCause, RankFailure, RecvError};
use crate::platform::Platform;
use std::fmt;

/// A collective communication algorithm (schedule family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollAlgorithm {
    /// The baseline star: the root sends/receives every rank directly,
    /// in ascending rank order. Identical to the legacy `comm` loops.
    #[default]
    Linear,
    /// Recursive-halving binomial tree over contiguous virtual-rank
    /// blocks: `⌈log₂ P⌉` depth, relays forward full payloads.
    BinomialTree,
    /// Two-level segment tree: one leader per remote segment crosses
    /// the serial inter-segment link once; leaders fan out locally.
    SegmentHierarchical,
    /// Broadcast only: the payload streams down the segment-hierarchical
    /// tree in fixed-count chunks so link occupancy overlaps. For
    /// gathers/reduces this resolves to [`Self::SegmentHierarchical`].
    PipelinedChunked,
    /// Evaluate every candidate's analytic cost ([`predict`]) for the
    /// given platform and `bits_hint`, pick the cheapest (ties favour
    /// the earlier variant, so `Linear` wins exact ties).
    Auto,
}

impl fmt::Display for CollAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollAlgorithm::Linear => "linear",
            CollAlgorithm::BinomialTree => "binomial_tree",
            CollAlgorithm::SegmentHierarchical => "segment_hierarchical",
            CollAlgorithm::PipelinedChunked => "pipelined_chunked",
            CollAlgorithm::Auto => "auto",
        };
        f.write_str(s)
    }
}

/// Which collective operation a [`CollectiveChoice`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    /// Root-to-all broadcast.
    Broadcast,
    /// All-to-root gather.
    Gather,
    /// Root-to-all personalized scatter (always linear; see module docs).
    Scatter,
    /// All-to-root reduction.
    Reduce,
    /// Fused reduce + broadcast on one tree schedule.
    Allreduce,
}

impl fmt::Display for CollOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollOp::Broadcast => "broadcast",
            CollOp::Gather => "gather",
            CollOp::Scatter => "scatter",
            CollOp::Reduce => "reduce",
            CollOp::Allreduce => "allreduce",
        };
        f.write_str(s)
    }
}

/// One algorithm decision made by a collective call on the root,
/// recorded in [`crate::RunReport::collectives`].
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveChoice {
    /// The operation performed.
    pub op: CollOp,
    /// What the configuration asked for (possibly [`CollAlgorithm::Auto`]).
    pub requested: CollAlgorithm,
    /// The concrete algorithm that ran.
    pub algorithm: CollAlgorithm,
    /// The `bits_hint` the selection was made with.
    pub bits: u64,
    /// The cost model's predicted completion time for the chosen
    /// algorithm (exact for healthy runs rooted at rank 0 whose clocks
    /// are aligned when the collective starts; see [`predict`]).
    pub predicted_secs: f64,
}

/// Per-operation algorithm selection carried through the application
/// layer (see `hetero::RunOptions::collectives`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveConfig {
    /// Algorithm for broadcasts.
    pub broadcast: CollAlgorithm,
    /// Algorithm for gathers.
    pub gather: CollAlgorithm,
    /// Algorithm for reduces.
    pub reduce: CollAlgorithm,
    /// Algorithm for fused allreduces. [`CollAlgorithm::Linear`] runs
    /// the legacy split schedule (linear gather + linear broadcast) so
    /// callers that branch on it keep bit- and timing-identity with the
    /// historic path.
    pub allreduce: CollAlgorithm,
    /// Chunk count for [`CollAlgorithm::PipelinedChunked`] broadcasts
    /// (clamped to at least 1).
    pub pipeline_chunks: u32,
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        CollectiveConfig::linear()
    }
}

impl CollectiveConfig {
    /// The baseline configuration: every collective linear — bit- and
    /// timing-identical to the legacy `comm` behaviour.
    pub fn linear() -> Self {
        CollectiveConfig {
            broadcast: CollAlgorithm::Linear,
            gather: CollAlgorithm::Linear,
            reduce: CollAlgorithm::Linear,
            allreduce: CollAlgorithm::Linear,
            pipeline_chunks: 4,
        }
    }

    /// Cost-model-driven selection for every collective.
    pub fn auto() -> Self {
        CollectiveConfig::uniform(CollAlgorithm::Auto)
    }

    /// The same algorithm for every collective operation.
    pub fn uniform(algorithm: CollAlgorithm) -> Self {
        CollectiveConfig {
            broadcast: algorithm,
            gather: algorithm,
            reduce: algorithm,
            allreduce: algorithm,
            pipeline_chunks: 4,
        }
    }
}

/// How a scatter's data staging is charged. See DESIGN.md: the paper's
/// reported COM magnitudes imply bulk data staging is *not* part of the
/// measured communication, so experiments default to [`ScatterMode::Free`];
/// the `ablation_scatter` bench flips this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScatterMode {
    /// Partitions are assumed pre-staged: only per-message latency.
    #[default]
    Free,
    /// Partitions pay full transfer cost on the link matrix.
    Charged,
}

/// Structured misuse errors for the collectives (the de-panicked
/// replacement for the old `expect`/`assert!` calls in `comm`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollError {
    /// The root rank passed `None` where a payload was required.
    RootMissingPayload {
        /// The operation that was misused.
        op: CollOp,
    },
    /// A non-root rank passed `Some(..)` where `None` was required.
    NonRootPayload {
        /// The operation that was misused.
        op: CollOp,
    },
    /// A scatter's item vector length didn't match the rank count.
    WrongItemCount {
        /// The rank count (one item required per rank).
        expected: usize,
        /// The number of items actually supplied.
        got: usize,
    },
    /// An epoch-stamped message carried a different epoch than the
    /// receiver's [`Membership`] view expects. `got < expected` is a
    /// *stale* message — late traffic from a superseded view, rejected
    /// so it cannot corrupt the current round; `got > expected` means
    /// the receiving rank's view is behind the sender's, which is a
    /// protocol violation (views must advance through the master's
    /// headers before new-epoch traffic is read).
    EpochMismatch {
        /// The epoch of the receiver's current membership view.
        expected: u64,
        /// The epoch stamped on the rejected message.
        got: u64,
    },
    /// A rank outside the [`Membership`] view's survivor set called (or
    /// was named root of) a survivor-set collective.
    NotAMember {
        /// The offending rank.
        rank: usize,
    },
}

impl fmt::Display for CollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollError::RootMissingPayload { op } => {
                write!(f, "{op}: root must supply the payload")
            }
            CollError::NonRootPayload { op } => {
                write!(f, "{op}: non-root ranks must pass None")
            }
            CollError::WrongItemCount { expected, got } => {
                write!(f, "scatter: need one item per rank ({expected}), got {got}")
            }
            CollError::EpochMismatch { expected, got } => {
                let kind = if got < expected { "stale" } else { "future" };
                write!(
                    f,
                    "epoch mismatch: received {kind}-epoch message (epoch {got}, view at {expected})"
                )
            }
            CollError::NotAMember { rank } => {
                write!(
                    f,
                    "rank {rank} is not in the membership view's survivor set"
                )
            }
        }
    }
}

impl std::error::Error for CollError {}

/// One slot of a gather's rank-ordered result: the contribution, or an
/// explicit record of why it is missing. Crashed ranks become `Lost`
/// entries at the root instead of aborting the run.
#[derive(Debug, Clone, PartialEq)]
pub enum GatherEntry<M> {
    /// The rank's contribution arrived.
    Ok(M),
    /// The contribution is missing; the failure is the one the root
    /// observed on the relay path (for tree gathers a lost relay marks
    /// its whole subtree with the relay's failure record).
    Lost(RankFailure),
}

impl<M> GatherEntry<M> {
    /// The contribution, if it arrived.
    pub fn into_msg(self) -> Option<M> {
        match self {
            GatherEntry::Ok(m) => Some(m),
            GatherEntry::Lost(_) => None,
        }
    }

    /// A reference to the contribution, if it arrived.
    pub fn msg(&self) -> Option<&M> {
        match self {
            GatherEntry::Ok(m) => Some(m),
            GatherEntry::Lost(_) => None,
        }
    }

    /// `true` when the contribution is missing.
    pub fn is_lost(&self) -> bool {
        matches!(self, GatherEntry::Lost(_))
    }
}

/// Resolves a requested algorithm to the concrete one that will run for
/// `op`, plus its predicted cost: normalizes broadcast-only algorithms,
/// and evaluates the [`predict`] cost model for [`CollAlgorithm::Auto`].
/// Deterministic in its arguments, so every rank resolves identically.
pub fn select(
    platform: &Platform,
    latency_s: f64,
    op: CollOp,
    requested: CollAlgorithm,
    root: usize,
    bits: u64,
    pipeline_chunks: u32,
) -> (CollAlgorithm, f64) {
    let normalize = |alg: CollAlgorithm| match (op, alg) {
        // Chunked streaming only exists for broadcast; elsewhere it
        // means "the same tree, unchunked".
        (CollOp::Broadcast, a) => a,
        (_, CollAlgorithm::PipelinedChunked) => CollAlgorithm::SegmentHierarchical,
        (_, a) => a,
    };
    if requested != CollAlgorithm::Auto {
        let alg = normalize(requested);
        let cost = predict(platform, latency_s, op, alg, root, bits, pipeline_chunks);
        return (alg, cost);
    }
    if bits == 0 {
        // A zero hint carries no size information (the linear `comm`
        // wrappers forward 0 for empty payloads): ranking schedules on a
        // zero-byte message would pick a tree on pure latency grounds
        // from a meaningless hint, so fall back to the baseline.
        let alg = CollAlgorithm::Linear;
        let cost = predict(platform, latency_s, op, alg, root, bits, pipeline_chunks);
        return (alg, cost);
    }
    let candidates: &[CollAlgorithm] = match op {
        CollOp::Broadcast => &[
            CollAlgorithm::Linear,
            CollAlgorithm::BinomialTree,
            CollAlgorithm::SegmentHierarchical,
            CollAlgorithm::PipelinedChunked,
        ],
        _ => &[
            CollAlgorithm::Linear,
            CollAlgorithm::BinomialTree,
            CollAlgorithm::SegmentHierarchical,
        ],
    };
    let mut best = CollAlgorithm::Linear;
    let mut best_cost = f64::INFINITY;
    for &alg in candidates {
        let cost = predict(platform, latency_s, op, alg, root, bits, pipeline_chunks);
        // Strict `<` keeps the earliest candidate on ties: Linear wins
        // exact ties (e.g. hierarchical on a single-segment platform).
        if cost < best_cost {
            best = alg;
            best_cost = cost;
        }
    }
    (best, best_cost)
}

/// Splits `bits` into `chunks` near-equal parts (earlier chunks take the
/// remainder). Always returns at least one chunk; the sizes sum to
/// `bits` so the total link charge of a pipelined broadcast equals the
/// unchunked one.
pub(crate) fn split_chunks(bits: u64, chunks: usize) -> Vec<u64> {
    let k = chunks.max(1) as u64;
    let base = bits / k;
    let rem = bits % k;
    (0..k).map(|i| base + u64::from(i < rem)).collect()
}

fn build_tree<M: Wire>(ctx: &Ctx<M>, algorithm: CollAlgorithm, root: usize) -> Tree {
    let p = ctx.num_ranks();
    match algorithm {
        CollAlgorithm::Linear => schedule::linear(root, p),
        CollAlgorithm::BinomialTree => schedule::binomial(root, p),
        CollAlgorithm::SegmentHierarchical | CollAlgorithm::PipelinedChunked => {
            schedule::segment_hierarchical(root, ctx.platform())
        }
        CollAlgorithm::Auto => unreachable!("selection resolved before building"),
    }
}

/// Resolves the algorithm on every rank identically and records the
/// choice on the root.
fn resolve_and_log<M: Wire>(
    ctx: &mut Ctx<M>,
    op: CollOp,
    requested: CollAlgorithm,
    root: usize,
    bits_hint: u64,
    pipeline_chunks: u32,
) -> CollAlgorithm {
    let (algorithm, predicted_secs) = select(
        ctx.platform(),
        ctx.msg_latency_s(),
        op,
        requested,
        root,
        bits_hint,
        pipeline_chunks,
    );
    // Rank 0's log is the one the engine collects into the report, so
    // log there regardless of which rank roots the collective.
    if ctx.rank() == 0 {
        ctx.log_collective(CollectiveChoice {
            op,
            requested,
            algorithm,
            bits: bits_hint,
            predicted_secs,
        });
    }
    algorithm
}

/// Fan-out of one payload to `children` when the local rank must also
/// **retain** the payload (tree broadcast, allreduce down-phase): the
/// retained copy is cloned first, every non-final child receives a
/// clone, and the final child takes the payload **by move** — so a rank
/// with `c` children performs exactly `c` clones, never `c + 1`.
///
/// Every clone goes through [`Ctx::clone_counted`], so the run's
/// [`crate::CopyStats`] record the deep bytes deterministically: for an
/// `Arc`-backed payload each clone is a refcount bump contributing 0
/// deep bytes, while the owned-payload baseline counter accrues one full
/// payload per send either way.
fn fanout_retain<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    children: &[usize],
    payload: M,
    chunk_bits: Option<u64>,
) -> M {
    let send = |ctx: &mut Ctx<M>, dst: usize, m: M| match chunk_bits {
        Some(bits) => ctx.send_bits(dst, m, bits),
        None => ctx.send(dst, m),
    };
    match children.split_last() {
        None => payload,
        Some((&last, rest)) => {
            let keep = ctx.clone_counted(&payload);
            for &child in rest {
                ctx.note_fanout_send(&payload);
                let copy = ctx.clone_counted(&payload);
                send(ctx, child, copy);
            }
            ctx.note_fanout_send(&payload);
            send(ctx, last, payload);
            keep
        }
    }
}

/// Fan-out of one payload the local rank does **not** need afterwards
/// (pipelined non-final chunks, master fan-outs): non-final destinations
/// receive telemetry-counted clones, the final destination takes the
/// payload by move — one fewer deep copy than [`fanout_retain`].
fn fanout_consume<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    dsts: &[usize],
    payload: M,
    chunk_bits: Option<u64>,
) {
    let send = |ctx: &mut Ctx<M>, dst: usize, m: M| match chunk_bits {
        Some(bits) => ctx.send_bits(dst, m, bits),
        None => ctx.send(dst, m),
    };
    let Some((&last, rest)) = dsts.split_last() else {
        return;
    };
    for &child in rest {
        ctx.note_fanout_send(&payload);
        let copy = ctx.clone_counted(&payload);
        send(ctx, child, copy);
    }
    ctx.note_fanout_send(&payload);
    send(ctx, last, payload);
}

/// Broadcast from `root` under `cfg`: the root passes `Some(msg)`, every
/// other rank passes `None`; all ranks return the payload.
///
/// `bits_hint` feeds `Auto` selection only (transfers charge the actual
/// payload size) and **must be identical on every rank** — see the
/// module docs.
pub fn broadcast<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    cfg: &CollectiveConfig,
    root: usize,
    msg: Option<M>,
    bits_hint: u64,
) -> Result<M, CollError> {
    let algorithm = resolve_and_log(
        ctx,
        CollOp::Broadcast,
        cfg.broadcast,
        root,
        bits_hint,
        cfg.pipeline_chunks,
    );
    let tree = build_tree(ctx, algorithm, root);
    if algorithm == CollAlgorithm::PipelinedChunked {
        return broadcast_pipelined(ctx, &tree, msg, cfg.pipeline_chunks);
    }
    run_broadcast_tree(ctx, &tree, msg)
}

/// The unchunked tree broadcast body shared by [`broadcast`] and
/// [`broadcast_overlap`]: receive from the parent, forward to the
/// broadcast children in schedule order — clones for all but the last
/// child, which takes the payload by move (see [`fanout_retain`]).
fn run_broadcast_tree<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    tree: &Tree,
    msg: Option<M>,
) -> Result<M, CollError> {
    let op = CollOp::Broadcast;
    let rank = ctx.rank();
    let payload = match tree.parent(rank) {
        None => msg.ok_or(CollError::RootMissingPayload { op })?,
        Some(parent) => {
            if msg.is_some() {
                return Err(CollError::NonRootPayload { op });
            }
            ctx.recv(parent)
        }
    };
    Ok(fanout_retain(ctx, tree.children_bcast(rank), payload, None))
}

/// Broadcast with per-chunk compute overlap: identical wire schedule to
/// [`broadcast`] under the same `cfg`, but every delivered chunk is
/// handed to `on_chunk(ctx, chunk_index, chunk_count)` so receivers can
/// charge a slice of their post-broadcast compute while later chunks
/// are still in flight.
///
/// Overlap only changes *when* compute is charged, never what travels:
///
/// * when the resolved algorithm is [`CollAlgorithm::PipelinedChunked`],
///   **leaf** ranks interleave the callback with their chunk receives —
///   compute slices absorb the inter-chunk arrival gaps, which is the
///   overlap win on serial-link networks. The root and interior relays
///   keep forwarding untouched (delaying a relayed chunk would delay
///   every descendant) and run all callbacks after the protocol;
/// * any other resolved algorithm delivers the payload whole, so the
///   callback runs exactly once as `on_chunk(ctx, 0, 1)` on every rank
///   — bit- and timing-identical to calling [`broadcast`] and charging
///   the compute afterwards.
pub fn broadcast_overlap<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    cfg: &CollectiveConfig,
    root: usize,
    msg: Option<M>,
    bits_hint: u64,
    mut on_chunk: impl FnMut(&mut Ctx<M>, usize, usize),
) -> Result<M, CollError> {
    let op = CollOp::Broadcast;
    let algorithm = resolve_and_log(ctx, op, cfg.broadcast, root, bits_hint, cfg.pipeline_chunks);
    let tree = build_tree(ctx, algorithm, root);
    if algorithm != CollAlgorithm::PipelinedChunked {
        let payload = run_broadcast_tree(ctx, &tree, msg)?;
        on_chunk(ctx, 0, 1);
        return Ok(payload);
    }
    let rank = ctx.rank();
    let k = cfg.pipeline_chunks.max(1) as usize;
    match tree.parent(rank) {
        Some(parent) if tree.is_leaf(rank) => {
            if msg.is_some() {
                return Err(CollError::NonRootPayload { op });
            }
            let mut payload = ctx.recv(parent);
            on_chunk(ctx, 0, k);
            for c in 1..k {
                payload = ctx.recv(parent);
                on_chunk(ctx, c, k);
            }
            Ok(payload)
        }
        _ => {
            let payload = broadcast_pipelined(ctx, &tree, msg, cfg.pipeline_chunks)?;
            for c in 0..k {
                on_chunk(ctx, c, k);
            }
            Ok(payload)
        }
    }
}

/// Chunk-streamed broadcast down the segment-hierarchical tree: every
/// edge carries `pipeline_chunks` messages whose charged sizes sum to
/// the payload size; a relay forwards chunk `c` before receiving chunk
/// `c + 1`, so its outbound transfers overlap the inbound ones.
fn broadcast_pipelined<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    tree: &Tree,
    msg: Option<M>,
    pipeline_chunks: u32,
) -> Result<M, CollError> {
    let op = CollOp::Broadcast;
    let rank = ctx.rank();
    let k = pipeline_chunks.max(1) as usize;
    match tree.parent(rank) {
        None => {
            let payload = msg.ok_or(CollError::RootMissingPayload { op })?;
            let sizes = split_chunks(payload.size_bits(), k);
            let (&last_bits, head) = sizes
                .split_last()
                .expect("split_chunks yields at least one chunk");
            // The root needs the payload for every chunk, so non-final
            // chunks clone per child; the final chunk moves to the last
            // child and the root keeps the retained copy.
            for &chunk_bits in head {
                for &child in tree.children_bcast(rank) {
                    ctx.note_fanout_send(&payload);
                    let copy = ctx.clone_counted(&payload);
                    ctx.send_bits(child, copy, chunk_bits);
                }
            }
            Ok(fanout_retain(
                ctx,
                tree.children_bcast(rank),
                payload,
                Some(last_bits),
            ))
        }
        Some(parent) => {
            if msg.is_some() {
                return Err(CollError::NonRootPayload { op });
            }
            // Every chunk carries a full payload; only the charged wire
            // size is chunked. A relay drops each non-final chunk after
            // forwarding, so the last child takes it by move; the final
            // chunk is retained as this rank's result.
            let mut payload = ctx.recv(parent);
            // The payload is identical on every rank, so the locally
            // computed chunk sizes agree with the root's.
            let sizes = split_chunks(payload.size_bits(), k);
            let (&last_bits, head) = sizes
                .split_last()
                .expect("split_chunks yields at least one chunk");
            for &chunk_bits in head {
                fanout_consume(ctx, tree.children_bcast(rank), payload, Some(chunk_bits));
                payload = ctx.recv(parent);
            }
            Ok(fanout_retain(
                ctx,
                tree.children_bcast(rank),
                payload,
                Some(last_bits),
            ))
        }
    }
}

/// Gather to `root` under `cfg`: every rank contributes `msg`; the root
/// returns `Some(entries)` indexed by rank — contributions of failed
/// ranks appear as explicit [`GatherEntry::Lost`] records, never an
/// abort — and every other rank returns `None`.
///
/// `bits_hint` feeds `Auto` selection only and **must be identical on
/// every rank** (see the module docs); transfers charge actual sizes.
pub fn gather<M: Wire>(
    ctx: &mut Ctx<M>,
    cfg: &CollectiveConfig,
    root: usize,
    msg: M,
    bits_hint: u64,
) -> Option<Vec<GatherEntry<M>>> {
    let algorithm = resolve_and_log(
        ctx,
        CollOp::Gather,
        cfg.gather,
        root,
        bits_hint,
        cfg.pipeline_chunks,
    );
    let tree = build_tree(ctx, algorithm, root);
    run_gather(ctx, &tree, root, msg, None)
}

/// The gather body shared by [`gather`] and [`gather_over`]. With a
/// membership `view`, ranks outside the tree (the view's known-dead
/// ranks) become [`GatherEntry::Lost`] entries carrying the view's
/// recorded failure; without one, the tree spans every rank and a hole
/// is a protocol bug.
fn run_gather<M: Wire>(
    ctx: &mut Ctx<M>,
    tree: &Tree,
    root: usize,
    msg: M,
    view: Option<&Membership>,
) -> Option<Vec<GatherEntry<M>>> {
    let rank = ctx.rank();
    if rank == root {
        let p = ctx.num_ranks();
        let mut out: Vec<Option<GatherEntry<M>>> = (0..p).map(|_| None).collect();
        out[root] = Some(GatherEntry::Ok(msg));
        for &child in tree.children_gather(root) {
            let origins = tree.subtree_order(child);
            let mut lost: Option<RankFailure> = None;
            for &origin in &origins {
                if let Some(f) = &lost {
                    out[origin] = Some(GatherEntry::Lost(f.clone()));
                    continue;
                }
                match ctx.recv_deadline(child, f64::INFINITY) {
                    Ok(m) => out[origin] = Some(GatherEntry::Ok(m)),
                    Err(RecvError::Failed(f)) => {
                        out[origin] = Some(GatherEntry::Lost(f.clone()));
                        lost = Some(f);
                    }
                    Err(RecvError::Timeout { .. }) => {
                        // The relay exited cleanly without sending —
                        // protocol misuse on the relay path; record it
                        // as a lost peer rather than aborting.
                        let f = RankFailure {
                            rank: child,
                            at: ctx.elapsed(),
                            cause: FailureCause::PeerLost { peer: child },
                        };
                        out[origin] = Some(GatherEntry::Lost(f.clone()));
                        lost = Some(f);
                    }
                }
            }
        }
        Some(
            out.into_iter()
                .enumerate()
                .map(|(r, e)| match (e, view) {
                    (Some(entry), _) => entry,
                    // Not in the survivor tree: the view already knows
                    // this rank is dead — report its recorded failure.
                    (None, Some(v)) => GatherEntry::Lost(v.lost_entry(r)),
                    (None, None) => {
                        unreachable!("gather: rank {r} is in exactly one subtree")
                    }
                })
                .collect(),
        )
    } else {
        let parent = tree.parent(rank).expect("gather: non-root has a parent");
        // Collect this subtree's contributions in `subtree_order`, then
        // relay them upward; the parent knows the order from the shared
        // tree, so no metadata travels on the wire.
        let mut collected: Vec<M> = vec![msg];
        for &child in tree.children_gather(rank) {
            for _ in 0..tree.subtree_size(child) {
                collected.push(ctx.recv(child));
            }
        }
        for m in collected {
            ctx.send(parent, m);
        }
        None
    }
}

/// Scatter from `root`: the root supplies one message per rank (its own
/// element is returned to it directly); every rank returns its element.
/// `mode` selects whether transfers are charged (see [`ScatterMode`]).
///
/// Scatters are always linear: payloads are personalized and
/// non-splittable, so relaying a full item over a tree costs at least as
/// much as the direct send on every platform in this repository (the
/// triangle inequality holds for all preset link matrices) — see
/// `docs/COMMS.md`.
pub fn scatter<M: Wire>(
    ctx: &mut Ctx<M>,
    root: usize,
    items: Option<Vec<M>>,
    mode: ScatterMode,
) -> Result<M, CollError> {
    let op = CollOp::Scatter;
    let bits_hint = match (&items, mode) {
        (_, ScatterMode::Free) => 0,
        (Some(v), _) => v.first().map_or(0, |m| m.size_bits()),
        (None, _) => 0,
    };
    let algorithm = resolve_and_log(ctx, op, CollAlgorithm::Linear, root, bits_hint, 1);
    debug_assert_eq!(algorithm, CollAlgorithm::Linear);
    if ctx.rank() == root {
        let items = items.ok_or(CollError::RootMissingPayload { op })?;
        if items.len() != ctx.num_ranks() {
            return Err(CollError::WrongItemCount {
                expected: ctx.num_ranks(),
                got: items.len(),
            });
        }
        let mut own = None;
        for (dst, item) in items.into_iter().enumerate() {
            if dst == root {
                own = Some(item);
            } else {
                match mode {
                    ScatterMode::Free => ctx.send_free(dst, item),
                    ScatterMode::Charged => ctx.send(dst, item),
                }
            }
        }
        Ok(own.expect("scatter: the root's own element exists"))
    } else {
        if items.is_some() {
            return Err(CollError::NonRootPayload { op });
        }
        Ok(ctx.recv(root))
    }
}

/// Reduce to `root` with a binary fold under `cfg`: the root returns
/// `Some(folded)` over the surviving contributions, everyone else
/// `None`.
///
/// [`CollAlgorithm::Linear`] folds strictly in rank order (the legacy
/// behaviour). Tree algorithms fold partial results inside relays:
/// binomial subtrees are contiguous rank blocks, so for a root at rank
/// 0 the tree *regroups* — never reorders — the linear fold, and any
/// **associative** fold is bit-identical to linear;
/// [`CollAlgorithm::SegmentHierarchical`] additionally requires
/// commutativity when segments interleave in rank space. See
/// `docs/COMMS.md`.
pub fn reduce<M: Wire>(
    ctx: &mut Ctx<M>,
    cfg: &CollectiveConfig,
    root: usize,
    msg: M,
    fold: impl Fn(M, M) -> M,
    bits_hint: u64,
) -> Option<M> {
    let algorithm = resolve_and_log(
        ctx,
        CollOp::Reduce,
        cfg.reduce,
        root,
        bits_hint,
        cfg.pipeline_chunks,
    );
    if algorithm == CollAlgorithm::Linear {
        // Exactly the legacy schedule: a linear gather plus a free
        // rank-order fold at the root, skipping lost contributions.
        let tree = schedule::linear(root, ctx.num_ranks());
        return run_gather(ctx, &tree, root, msg, None).map(|entries| {
            let mut it = entries.into_iter().filter_map(GatherEntry::into_msg);
            let first = it.next().expect("reduce: the root's own contribution");
            it.fold(first, fold)
        });
    }
    let tree = build_tree(ctx, algorithm, root);
    run_reduce_tree(ctx, &tree, msg, fold)
}

/// The tree-reduce body shared by [`reduce`] and [`reduce_over`]:
/// partials fold upward through the gather edges; the root returns the
/// folded value, relays send theirs onward.
fn run_reduce_tree<M: Wire>(
    ctx: &mut Ctx<M>,
    tree: &Tree,
    msg: M,
    fold: impl Fn(M, M) -> M,
) -> Option<M> {
    let rank = ctx.rank();
    let mut acc = msg;
    if rank == tree.root() {
        for &child in tree.children_gather(rank) {
            // A lost relay loses its subtree's partial; fold the
            // survivors (mirrors linear's hole-skipping).
            if let Ok(partial) = ctx.recv_deadline(child, f64::INFINITY) {
                acc = fold(acc, partial);
            }
        }
        Some(acc)
    } else {
        for &child in tree.children_gather(rank) {
            let partial = ctx.recv(child);
            acc = fold(acc, partial);
        }
        let parent = tree.parent(rank).expect("reduce: non-root has a parent");
        ctx.send(parent, acc);
        None
    }
}

/// Fused allreduce under `cfg`: every rank contributes `msg`, partials
/// fold upward through the tree's gather edges, and the root's result
/// fans back down the broadcast edges of the **same** schedule. Every
/// rank returns the folded value — one tree instead of a full gather
/// followed by a full broadcast.
///
/// The fold must be **associative** and **size-preserving** (every
/// contribution and every partial must share one wire size, which is
/// also what makes [`predict`]'s replay exact); like [`reduce`],
/// [`CollAlgorithm::SegmentHierarchical`] additionally requires
/// commutativity when segments interleave in rank space. On the
/// [`CollAlgorithm::Linear`] star this is message-for-message identical
/// to a linear gather, a free rank-order fold at the root, and a linear
/// broadcast of the result.
///
/// **Failure semantics.** A crashed contributor's partial is skipped at
/// the root exactly like [`reduce`]'s hole-skipping (a dead relay loses
/// its whole subtree); ranks below a dead relay unwind as structured
/// `PeerLost` failures and the root's sends to dead children are
/// dropped — the collective never hangs and never aborts the run.
///
/// `bits_hint` feeds `Auto` selection only and **must be identical on
/// every rank** (see the module docs); transfers charge actual sizes.
pub fn allreduce<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    cfg: &CollectiveConfig,
    root: usize,
    msg: M,
    fold: impl Fn(M, M) -> M,
    bits_hint: u64,
) -> M {
    let algorithm = resolve_and_log(
        ctx,
        CollOp::Allreduce,
        cfg.allreduce,
        root,
        bits_hint,
        cfg.pipeline_chunks,
    );
    let tree = build_tree(ctx, algorithm, root);
    run_allreduce_tree(ctx, &tree, msg, fold)
}

/// The fused allreduce body shared by [`allreduce`] and
/// [`allreduce_over`]: partials fold up the gather edges, the result
/// fans back down the broadcast edges of the same tree.
fn run_allreduce_tree<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    tree: &Tree,
    msg: M,
    fold: impl Fn(M, M) -> M,
) -> M {
    let rank = ctx.rank();
    let mut acc = msg;
    if rank == tree.root() {
        for &child in tree.children_gather(rank) {
            // A lost relay loses its subtree's partial; fold the
            // survivors (mirrors `reduce`'s hole-skipping).
            if let Ok(partial) = ctx.recv_deadline(child, f64::INFINITY) {
                acc = fold(acc, partial);
            }
        }
        fanout_retain(ctx, tree.children_bcast(rank), acc, None)
    } else {
        for &child in tree.children_gather(rank) {
            let partial = ctx.recv(child);
            acc = fold(acc, partial);
        }
        let parent = tree.parent(rank).expect("allreduce: non-root has a parent");
        ctx.send(parent, acc);
        let result = ctx.recv(parent);
        fanout_retain(ctx, tree.children_bcast(rank), result, None)
    }
}

/// Barrier: all ranks synchronise their virtual clocks to the latest
/// participant (a gather plus a broadcast of a token built by
/// `make_token`; both use `cfg`'s algorithms). Tokens must have the
/// same wire size on every rank.
pub fn barrier<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    cfg: &CollectiveConfig,
    root: usize,
    make_token: impl Fn() -> M,
) {
    let token = make_token();
    let bits = token.size_bits();
    let _ = gather(ctx, cfg, root, token, bits);
    let msg = if ctx.rank() == root {
        Some(make_token())
    } else {
        None
    };
    let _ = broadcast(ctx, cfg, root, msg, bits);
}

/// Root-side fan-out of per-destination messages built by `make` —
/// the collective entry point for masters whose workers only ever
/// `recv(0)`: a tree schedule cannot relay through workers that never
/// forward, so the fan-out stays linear by construction. The
/// fault-tolerant drivers in `hetero::ft` use this as their default
/// state-distribution path; with [`crate::Membership`] and the
/// survivor-view collectives (`*_over`) they can instead ship state
/// down an epoch-stamped survivor tree (`FtOptions::collectives`).
/// Destinations are sent in slice order.
pub fn fanout_with<M: Wire>(ctx: &mut Ctx<M>, dsts: &[usize], mut make: impl FnMut() -> M) {
    for &dst in dsts {
        let m = make();
        ctx.send(dst, m);
    }
}

/// [`fanout_with`] for the common case where every destination receives
/// the **same** payload: non-final destinations get telemetry-counted
/// clones and the final destination takes `msg` by move, so a master
/// fanning one `Arc`-backed state to `n` workers performs `n - 1`
/// refcount bumps and zero deep copies. Destinations are sent in slice
/// order, exactly like [`fanout_with`].
pub fn fanout_shared<M: Wire + Clone>(ctx: &mut Ctx<M>, dsts: &[usize], msg: M) {
    fanout_consume(ctx, dsts, msg, None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, WireVec};
    use crate::platform::Platform;
    use crate::presets;

    fn engine(p: usize) -> Engine {
        Engine::new(Platform::uniform("t", p, 0.01, 1024, 10.0))
    }

    const ALGOS: [CollAlgorithm; 5] = [
        CollAlgorithm::Linear,
        CollAlgorithm::BinomialTree,
        CollAlgorithm::SegmentHierarchical,
        CollAlgorithm::PipelinedChunked,
        CollAlgorithm::Auto,
    ];

    #[test]
    fn broadcast_delivers_under_every_algorithm() {
        for alg in ALGOS {
            let cfg = CollectiveConfig::uniform(alg);
            let report = engine(6).run(move |ctx| {
                let msg = if ctx.is_root() {
                    Some(WireVec(vec![42u32, 7]))
                } else {
                    None
                };
                broadcast(ctx, &cfg, 0, msg, 64).expect("broadcast").0
            });
            for r in 0..6 {
                assert_eq!(*report.result(r), vec![42, 7], "{alg}: rank {r}");
            }
        }
    }

    #[test]
    fn gather_rank_order_under_every_algorithm() {
        for alg in ALGOS {
            let cfg = CollectiveConfig::uniform(alg);
            for p in [2usize, 5, 6, 9] {
                let report = engine(p).run(move |ctx| {
                    gather(ctx, &cfg, 0, ctx.rank() as u64, 64).map(|entries| {
                        entries
                            .into_iter()
                            .map(|e| e.into_msg().expect("healthy"))
                            .collect::<Vec<_>>()
                    })
                });
                let expect: Vec<u64> = (0..p as u64).collect();
                assert_eq!(
                    report.result(0).as_deref(),
                    Some(&expect[..]),
                    "{alg} p={p}"
                );
            }
        }
    }

    #[test]
    fn reduce_associative_fold_matches_linear() {
        // Wrapping add: associative and commutative, exact on u64.
        for alg in ALGOS {
            let cfg = CollectiveConfig::uniform(alg);
            let report = engine(9).run(move |ctx| {
                reduce(
                    ctx,
                    &cfg,
                    0,
                    (ctx.rank() as u64 + 1) * 1_000_003,
                    |a, b| a.wrapping_add(b),
                    64,
                )
            });
            let expect: u64 = (1..=9u64).map(|r| r * 1_000_003).sum();
            assert_eq!(*report.result(0), Some(expect), "{alg}");
        }
    }

    #[test]
    fn binomial_reduce_regroups_associative_noncommutative_fold() {
        // String concatenation: associative, NOT commutative. Binomial
        // subtrees are contiguous rank blocks, so the result must equal
        // the linear left fold exactly.
        for alg in [CollAlgorithm::Linear, CollAlgorithm::BinomialTree] {
            let cfg = CollectiveConfig::uniform(alg);
            for p in [2usize, 5, 7, 8] {
                let report = engine(p).run(move |ctx| {
                    reduce(
                        ctx,
                        &cfg,
                        0,
                        WireVec(vec![ctx.rank() as u8]),
                        |mut a, b| {
                            a.0.extend_from_slice(&b.0);
                            a
                        },
                        8,
                    )
                    .map(|m| m.0)
                });
                let expect: Vec<u8> = (0..p as u8).collect();
                assert_eq!(
                    report.result(0).as_deref(),
                    Some(&expect[..]),
                    "{alg} p={p}"
                );
            }
        }
    }

    #[test]
    fn allreduce_delivers_folded_value_to_every_rank() {
        for alg in ALGOS {
            let cfg = CollectiveConfig::uniform(alg);
            let report = engine(9).run(move |ctx| {
                allreduce(
                    ctx,
                    &cfg,
                    0,
                    (ctx.rank() as u64 + 1) * 1_000_003,
                    |a, b| a.wrapping_add(b),
                    64,
                )
            });
            let expect: u64 = (1..=9u64).map(|r| r * 1_000_003).sum();
            for r in 0..9 {
                assert_eq!(*report.result(r), expect, "{alg}: rank {r}");
            }
        }
    }

    #[test]
    fn allreduce_single_rank_returns_own_contribution() {
        let cfg = CollectiveConfig::uniform(CollAlgorithm::BinomialTree);
        let report = engine(1).run(move |ctx| allreduce(ctx, &cfg, 0, 7u64, |a, b| a + b, 64));
        assert_eq!(*report.result(0), 7);
    }

    #[test]
    fn allreduce_skips_crashed_contributor_and_completes() {
        let plan = crate::faults::FaultPlan::new().crash(2, 0.0);
        let cfg = CollectiveConfig::default();
        let report = engine(4)
            .with_faults(plan)
            .run(move |ctx| allreduce(ctx, &cfg, 0, 1u64 << (ctx.rank() * 8), |a, b| a | b, 64));
        // Rank 2's bit is an explicit hole in the fold; the survivors
        // still learn the reduced value.
        let expect = 1 | (1 << 8) | (1 << 24);
        for r in [0usize, 1, 3] {
            assert_eq!(*report.result(r), expect, "rank {r}");
        }
        assert!(report.failure_of(2).is_some());
    }

    #[test]
    fn auto_with_zero_bits_hint_resolves_to_linear() {
        let platform = presets::fully_heterogeneous();
        for op in [
            CollOp::Broadcast,
            CollOp::Gather,
            CollOp::Reduce,
            CollOp::Allreduce,
        ] {
            let (alg, _) = select(
                &platform,
                platform.msg_latency_s(),
                op,
                CollAlgorithm::Auto,
                0,
                0,
                4,
            );
            assert_eq!(alg, CollAlgorithm::Linear, "{op}: zero-bit hint");
        }
    }

    #[test]
    fn broadcast_overlap_delivers_and_calls_back_once_per_chunk() {
        for alg in ALGOS {
            let cfg = CollectiveConfig::uniform(alg);
            let report = engine(6).run(move |ctx| {
                let msg = if ctx.is_root() {
                    Some(WireVec(vec![3u32; 64]))
                } else {
                    None
                };
                let mut calls = Vec::new();
                let payload = {
                    let calls = &mut calls;
                    broadcast_overlap(ctx, &cfg, 0, msg, 64 * 32, |_, c, k| calls.push((c, k)))
                        .expect("broadcast")
                };
                (payload.0, calls)
            });
            for r in 0..6 {
                let (payload, calls) = report.result(r);
                assert_eq!(*payload, vec![3u32; 64], "{alg}: rank {r}");
                let k = calls.len();
                assert!(k >= 1, "{alg}: rank {r} callback never ran");
                let expect: Vec<(usize, usize)> = (0..k).map(|c| (c, k)).collect();
                assert_eq!(*calls, expect, "{alg}: rank {r} chunk indices");
            }
        }
    }

    #[test]
    fn overlapped_leaf_compute_never_finishes_later() {
        // Same wire schedule, compute sliced into the arrival gaps: the
        // overlapped run must end no later than broadcast-then-compute.
        let platform = presets::fully_heterogeneous();
        let mflops = 20.0;
        let cfg = CollectiveConfig {
            broadcast: CollAlgorithm::PipelinedChunked,
            ..CollectiveConfig::linear()
        };
        let bits: u64 = 16_128 * 8;
        let plain = Engine::new(platform.clone())
            .run(move |ctx| {
                let msg = if ctx.is_root() {
                    Some(WireVec(vec![0u8; (bits / 8) as usize]))
                } else {
                    None
                };
                let _ = broadcast(ctx, &cfg, 0, msg, bits).expect("broadcast");
                ctx.compute_par(mflops);
            })
            .total_time;
        let overlapped = Engine::new(platform)
            .run(move |ctx| {
                let msg = if ctx.is_root() {
                    Some(WireVec(vec![0u8; (bits / 8) as usize]))
                } else {
                    None
                };
                let _ = broadcast_overlap(ctx, &cfg, 0, msg, bits, |ctx, _, k| {
                    ctx.compute_par(mflops / k as f64)
                })
                .expect("broadcast");
            })
            .total_time;
        assert!(
            overlapped <= plain + 1e-12,
            "overlap slower: {overlapped} > {plain}"
        );
        assert!(
            overlapped < plain,
            "overlap should absorb serial-link gaps ({overlapped} vs {plain})"
        );
    }

    #[test]
    fn broadcast_misuse_is_an_error_not_a_panic() {
        let cfg = CollectiveConfig::default();
        let report = engine(2).run(move |ctx| {
            if ctx.is_root() {
                // Root forgot the payload.
                broadcast::<u64>(ctx, &cfg, 0, None, 64).err()
            } else {
                // Non-root supplied one.
                broadcast(ctx, &cfg, 0, Some(9u64), 64).err()
            }
        });
        assert_eq!(
            *report.result(0),
            Some(CollError::RootMissingPayload {
                op: CollOp::Broadcast
            })
        );
        assert_eq!(
            *report.result(1),
            Some(CollError::NonRootPayload {
                op: CollOp::Broadcast
            })
        );
    }

    #[test]
    fn scatter_wrong_count_is_an_error() {
        let report = engine(3).run(|ctx| {
            let items = if ctx.is_root() {
                Some(vec![1u64, 2]) // 2 items for 3 ranks
            } else {
                None
            };
            if ctx.is_root() {
                scatter(ctx, 0, items, ScatterMode::Free).err()
            } else {
                // Workers would block on a recv that never comes; skip.
                None
            }
        });
        assert_eq!(
            *report.result(0),
            Some(CollError::WrongItemCount {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn crashed_rank_becomes_lost_entry_not_abort() {
        let plan = crate::faults::FaultPlan::new().crash(2, 0.0);
        let cfg = CollectiveConfig::default();
        let report = engine(4).with_faults(plan).run(move |ctx| {
            gather(ctx, &cfg, 0, ctx.rank() as u64, 64).map(|entries| {
                entries
                    .into_iter()
                    .map(|e| match e {
                        GatherEntry::Ok(v) => (Some(v), None),
                        GatherEntry::Lost(f) => (None, Some(f.rank)),
                    })
                    .collect::<Vec<_>>()
            })
        });
        let root = report.results[0].clone().flatten().expect("root completes");
        assert_eq!(root[0], (Some(0), None));
        assert_eq!(root[1], (Some(1), None));
        assert_eq!(root[2], (None, Some(2)), "crashed rank is an explicit hole");
        assert_eq!(root[3], (Some(3), None));
    }

    #[test]
    fn auto_picks_hierarchical_for_large_broadcast_on_heterogeneous() {
        let platform = presets::fully_heterogeneous();
        let bits = 18 * 224 * 32; // endmember matrix U
        let (alg, _) = select(
            &platform,
            platform.msg_latency_s(),
            CollOp::Broadcast,
            CollAlgorithm::Auto,
            0,
            bits,
            4,
        );
        assert!(
            alg == CollAlgorithm::SegmentHierarchical || alg == CollAlgorithm::PipelinedChunked,
            "expected a segment-aware pick, got {alg}"
        );
    }

    #[test]
    fn auto_resolves_to_linear_on_tie() {
        // Single segment: hierarchical == linear exactly; Linear must
        // win the tie so single-segment platforms keep the baseline.
        let platform = Platform::uniform("u4", 4, 0.01, 64, 10.0);
        let (alg, _) = select(
            &platform,
            platform.msg_latency_s(),
            CollOp::Gather,
            CollAlgorithm::Auto,
            0,
            1_000_000,
            4,
        );
        assert_eq!(alg, CollAlgorithm::Linear);
    }

    #[test]
    fn choices_are_recorded_in_the_report() {
        let cfg = CollectiveConfig::auto();
        let report = engine(4).run(move |ctx| {
            let msg = if ctx.is_root() { Some(5u64) } else { None };
            let v = broadcast(ctx, &cfg, 0, msg, 64).expect("broadcast");
            let _ = gather(ctx, &cfg, 0, v, 64);
        });
        assert_eq!(report.collectives.len(), 2);
        assert_eq!(report.collectives[0].op, CollOp::Broadcast);
        assert_eq!(report.collectives[0].requested, CollAlgorithm::Auto);
        assert_ne!(report.collectives[0].algorithm, CollAlgorithm::Auto);
        assert_eq!(report.collectives[1].op, CollOp::Gather);
    }

    #[test]
    fn predicted_cost_is_exact_for_rooted_broadcast() {
        // The Auto guarantee hinges on this: prediction == measurement
        // for a collective issued at t = 0 on aligned clocks.
        for platform in presets::four_networks() {
            for alg in [
                CollAlgorithm::Linear,
                CollAlgorithm::BinomialTree,
                CollAlgorithm::SegmentHierarchical,
                CollAlgorithm::PipelinedChunked,
            ] {
                let bits: u64 = 18 * 224 * 32;
                let latency = platform.msg_latency_s();
                let predicted = predict(&platform, latency, CollOp::Broadcast, alg, 0, bits, 4);
                let cfg = CollectiveConfig::uniform(alg);
                let name = platform.name().to_string();
                let report = Engine::new(platform.clone()).run(move |ctx| {
                    let msg = if ctx.is_root() {
                        Some(WireVec(vec![0u8; (bits / 8) as usize]))
                    } else {
                        None
                    };
                    let _ = broadcast(ctx, &cfg, 0, msg, bits).expect("broadcast");
                });
                assert!(
                    (report.total_time - predicted).abs() < 1e-9,
                    "{name}/{alg}: predicted {predicted} vs measured {}",
                    report.total_time
                );
            }
        }
    }

    #[test]
    fn predicted_cost_is_exact_for_gather_and_reduce() {
        for platform in presets::four_networks() {
            for alg in [
                CollAlgorithm::Linear,
                CollAlgorithm::BinomialTree,
                CollAlgorithm::SegmentHierarchical,
            ] {
                let bits: u64 = 224 * 32;
                let latency = platform.msg_latency_s();
                for op in [CollOp::Gather, CollOp::Reduce] {
                    let predicted = predict(&platform, latency, op, alg, 0, bits, 4);
                    let cfg = CollectiveConfig::uniform(alg);
                    let name = platform.name().to_string();
                    let report = Engine::new(platform.clone()).run(move |ctx| {
                        let payload = WireVec(vec![0u8; (bits / 8) as usize]);
                        match op {
                            CollOp::Gather => {
                                let _ = gather(ctx, &cfg, 0, payload, bits);
                            }
                            CollOp::Reduce => {
                                let _ = reduce(ctx, &cfg, 0, payload, |a, _| a, bits);
                            }
                            _ => unreachable!(),
                        }
                    });
                    assert!(
                        (report.total_time - predicted).abs() < 1e-9,
                        "{name}/{alg}/{op}: predicted {predicted} vs measured {}",
                        report.total_time
                    );
                }
            }
        }
    }

    #[test]
    fn split_chunks_sums_and_never_empties() {
        assert_eq!(split_chunks(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_chunks(0, 4), vec![0, 0, 0, 0]);
        assert_eq!(split_chunks(7, 0), vec![7]);
        assert_eq!(split_chunks(129_024, 4).iter().sum::<u64>(), 129_024);
    }

    #[test]
    fn barrier_aligns_clocks_under_tree_algorithms() {
        for alg in ALGOS {
            let cfg = CollectiveConfig::uniform(alg);
            let report = engine(5).run(move |ctx| {
                if ctx.rank() == 3 {
                    ctx.compute_par(300.0); // 3 s behind
                }
                barrier(ctx, &cfg, 0, || 0u8);
                ctx.elapsed()
            });
            for r in 0..5 {
                assert!(*report.result(r) >= 3.0, "{alg}: rank {r} not aligned");
            }
        }
    }
}
