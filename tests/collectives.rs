//! Integration suite for `simnet::coll`: every collective algorithm
//! must be **payload-identical** to the linear baseline on any platform
//! and any rank count, deterministic across reruns (reports compare
//! bit-identically, the recorded algorithm choices included), and
//! well-behaved under link-fault plans. The `Auto` selector must never
//! pick a strictly-dominated algorithm on the mini-grid swept here
//! (the full grid is the `ablation_collectives` gate).

use heterospec::simnet::engine::{Engine, WireVec};
use heterospec::simnet::{
    coll, presets, CollAlgorithm, CollectiveConfig, FaultPlan, GatherEntry, Platform,
};
use testutil::{random_platform as platform, BACKENDS, RANK_COUNTS};

/// Broadcast + gather + reduce under `backend`, returning every rank's
/// received broadcast payload, the root's gathered entries, and the
/// root's reduce result. One wire type (`WireVec<u32>`) for all three,
/// since a `Ctx` is monomorphic per run.
type Exchange = (Vec<Vec<u32>>, Vec<u32>, u32);

fn exchange(platform: &Platform, backend: CollAlgorithm) -> Exchange {
    let cfg = CollectiveConfig::uniform(backend);
    let engine = Engine::new(platform.clone());
    let payload: Vec<u32> = (0..300).collect();
    let report = engine.run(|ctx| {
        let msg = if ctx.is_root() {
            Some(WireVec(payload.clone()))
        } else {
            None
        };
        let bcast = coll::broadcast(ctx, &cfg, 0, msg, (300 * 32) as u64)
            .expect("valid broadcast")
            .0;
        let tag = WireVec(vec![ctx.rank() as u32 + 10]);
        let gathered = coll::gather(ctx, &cfg, 0, tag, 32).map(|entries| {
            entries
                .into_iter()
                .map(|e| e.into_msg().expect("healthy run").0[0])
                .collect::<Vec<u32>>()
        });
        // Commutative + associative fold: hierarchical trees regroup
        // and (with interleaved segments) reorder the combination.
        let own = WireVec(vec![ctx.rank() as u32 + 1]);
        let reduced = coll::reduce(
            ctx,
            &cfg,
            0,
            own,
            |a, b| WireVec(vec![a.0[0].wrapping_add(b.0[0])]),
            32,
        )
        .map(|v| v.0[0]);
        (bcast, gathered, reduced)
    });
    let p = platform.num_procs();
    let bcasts: Vec<Vec<u32>> = (0..p).map(|r| report.result(r).0.clone()).collect();
    let (_, gathered, reduced) = report.result(0);
    (
        bcasts,
        gathered.clone().expect("root gathers"),
        reduced.expect("root reduces"),
    )
}

#[test]
fn every_backend_is_payload_identical_to_linear_across_rank_counts() {
    for p in RANK_COUNTS {
        let platform = platform(p);
        let baseline = exchange(&platform, CollAlgorithm::Linear);
        assert_eq!(
            baseline.1,
            (0..p as u32).map(|r| r + 10).collect::<Vec<_>>()
        );
        for backend in BACKENDS {
            let out = exchange(&platform, backend);
            assert_eq!(out, baseline, "{backend} differs from linear at p={p}");
        }
    }
}

#[test]
fn every_backend_is_payload_identical_on_the_paper_networks() {
    for network in presets::four_networks() {
        let baseline = exchange(&network, CollAlgorithm::Linear);
        for backend in BACKENDS {
            let out = exchange(&network, backend);
            assert_eq!(
                out,
                baseline,
                "{backend} differs from linear on {}",
                network.name()
            );
        }
    }
}

#[test]
fn reruns_are_bit_identical_including_choice_log() {
    let run_once = |backend: CollAlgorithm| {
        let cfg = CollectiveConfig::uniform(backend);
        let engine = Engine::new(presets::fully_heterogeneous());
        engine.run(|ctx| {
            let msg = if ctx.is_root() {
                Some(WireVec(vec![7u8; 16_128]))
            } else {
                None
            };
            let b = coll::broadcast(ctx, &cfg, 0, msg, 129_024).expect("valid broadcast");
            let g = coll::gather(ctx, &cfg, 0, WireVec(vec![ctx.rank() as u8]), 8);
            (b.0.len(), g.map(|e| e.len()), ctx.elapsed())
        })
    };
    for backend in BACKENDS {
        let a = run_once(backend);
        let b = run_once(backend);
        assert_eq!(a, b, "rerun drift under {backend}");
        assert!(
            !a.collectives.is_empty(),
            "choices must be recorded under {backend}"
        );
        if backend == CollAlgorithm::Auto {
            // Auto resolved to something concrete, deterministically.
            for choice in &a.collectives {
                assert_eq!(choice.requested, CollAlgorithm::Auto);
                assert_ne!(choice.algorithm, CollAlgorithm::Auto);
            }
        }
    }
}

#[test]
fn link_outage_delays_but_never_corrupts_collectives() {
    let payload: Vec<u32> = (0..4032).collect();
    let run_once = |outage: bool, backend: CollAlgorithm| {
        let cfg = CollectiveConfig::uniform(backend);
        let mut engine = Engine::new(presets::fully_heterogeneous());
        if outage {
            // Segment 0 <-> 1 link down for the first 50 virtual ms —
            // squarely across the broadcast's cross-segment sends.
            engine = engine.with_faults(FaultPlan::new().link_outage(0, 1, 0.0, 0.05));
        }
        let engine = engine;
        engine.run(|ctx| {
            let msg = if ctx.is_root() {
                Some(WireVec(payload.clone()))
            } else {
                None
            };
            let out = coll::broadcast(ctx, &cfg, 0, msg, (4032 * 32) as u64)
                .expect("valid broadcast")
                .0;
            (out, ctx.elapsed())
        })
    };
    for backend in [CollAlgorithm::Linear, CollAlgorithm::SegmentHierarchical] {
        let healthy = run_once(false, backend);
        let degraded = run_once(true, backend);
        // Same payload everywhere, later (or equal) finish, no failures.
        assert!(degraded.ok(), "{backend}: outage must not fail ranks");
        for r in 0..16 {
            assert_eq!(
                degraded.result(r).0,
                healthy.result(r).0,
                "{backend}: rank {r} payload corrupted by outage"
            );
        }
        assert!(
            degraded.total_time >= healthy.total_time,
            "{backend}: outage cannot speed the run up ({} < {})",
            degraded.total_time,
            healthy.total_time
        );
        // Determinism under the identical fault plan.
        let again = run_once(true, backend);
        assert_eq!(degraded, again, "{backend}: fault-plan rerun drift");
    }
}

#[test]
fn gather_marks_crashed_rank_as_lost_hole() {
    let cfg = CollectiveConfig::linear();
    let engine =
        Engine::new(presets::fully_heterogeneous()).with_faults(FaultPlan::new().crash(3, 0.0));
    let report = engine.run(|ctx| {
        // Rank 3's plan crashes it at t=0: the engine converts its send
        // into a failure marker and the root sees an explicit hole.
        coll::gather(ctx, &cfg, 0, ctx.rank() as u64, 64).map(|entries| {
            entries
                .iter()
                .map(GatherEntry::is_lost)
                .collect::<Vec<bool>>()
        })
    });
    let holes = report.result(0).as_ref().expect("root gathers");
    for (r, lost) in holes.iter().enumerate() {
        assert_eq!(*lost, r == 3, "rank {r} lost={lost}");
    }
}

#[test]
fn auto_is_never_dominated_on_the_mini_grid() {
    let concrete = [
        CollAlgorithm::Linear,
        CollAlgorithm::BinomialTree,
        CollAlgorithm::SegmentHierarchical,
        CollAlgorithm::PipelinedChunked,
    ];
    let bcast_time = |platform: &Platform, backend: CollAlgorithm, bits: u64| {
        let cfg = CollectiveConfig::uniform(backend);
        let engine = Engine::new(platform.clone());
        engine
            .run(|ctx| {
                let msg = if ctx.is_root() {
                    Some(WireVec(vec![0u8; (bits / 8) as usize]))
                } else {
                    None
                };
                coll::broadcast(ctx, &cfg, 0, msg, bits)
                    .expect("valid broadcast")
                    .0
                    .len()
            })
            .total_time
    };
    for platform in [
        presets::fully_heterogeneous(),
        presets::partially_homogeneous(),
    ] {
        for bits in [7_168u64, 129_024] {
            let auto = bcast_time(&platform, CollAlgorithm::Auto, bits);
            let best = concrete
                .iter()
                .map(|&a| bcast_time(&platform, a, bits))
                .fold(f64::INFINITY, f64::min);
            assert!(
                auto <= best + 1e-9,
                "auto {auto} dominated by best {best} on {} at {bits} bits",
                platform.name()
            );
        }
    }
}
