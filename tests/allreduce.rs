//! Conformance suite for the fused `simnet::coll::allreduce`: every
//! backend must deliver the same folded payload to **every** rank on
//! any platform and rank count; the `Linear` schedule must be bit- and
//! timing-identical to the legacy split (gather → rank-order fold →
//! broadcast); the analytic cost replay must equal the measured virtual
//! time exactly on every schedule; crashed contributors must surface as
//! skipped subtrees, not hangs; and the fused ATDCA/UFCLS
//! winner-selection path must match the legacy outputs while running
//! strictly faster on the paper's fully heterogeneous network.

use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::hetero::par::{atdca, ufcls};
use heterospec::simnet::engine::{Engine, WireVec};
use heterospec::simnet::{
    coll, presets, CollAlgorithm, CollOp, CollectiveConfig, FaultPlan, Platform,
};
use testutil::{coords, random_platform as platform, tiny_scene, BACKENDS, RANK_COUNTS};

/// Allreduce of each rank's `[rank, rank², …]` vector under `backend`,
/// folded with elementwise wrapping addition (associative and
/// commutative, as hierarchical trees require). Returns every rank's
/// delivered result.
fn fold_everywhere(platform: &Platform, backend: CollAlgorithm, len: usize) -> Vec<Vec<u32>> {
    let cfg = CollectiveConfig {
        allreduce: backend,
        ..CollectiveConfig::linear()
    };
    let engine = Engine::new(platform.clone());
    let report = engine.run(|ctx| {
        let r = ctx.rank() as u32;
        let own: Vec<u32> = (0..len as u32).map(|i| r.wrapping_mul(i + 1)).collect();
        coll::allreduce(
            ctx,
            &cfg,
            0,
            WireVec(own),
            |a, b| {
                WireVec(
                    a.0.iter()
                        .zip(&b.0)
                        .map(|(x, y)| x.wrapping_add(*y))
                        .collect(),
                )
            },
            (len * 32) as u64,
        )
        .0
    });
    (0..platform.num_procs())
        .map(|r| report.result(r).clone())
        .collect()
}

/// The sequential reference: elementwise sum over all ranks.
fn sequential_fold(p: usize, len: usize) -> Vec<u32> {
    (0..len as u32)
        .map(|i| {
            (0..p as u32)
                .map(|r| r.wrapping_mul(i + 1))
                .fold(0u32, u32::wrapping_add)
        })
        .collect()
}

#[test]
fn every_backend_agrees_with_the_sequential_fold_across_rank_counts() {
    for p in RANK_COUNTS {
        let platform = platform(p);
        let expect = sequential_fold(p, 96);
        for backend in BACKENDS {
            let results = fold_everywhere(&platform, backend, 96);
            for (r, got) in results.iter().enumerate() {
                assert_eq!(
                    *got, expect,
                    "{backend} at p={p}: rank {r} got a wrong fold"
                );
            }
        }
    }
}

#[test]
fn every_backend_agrees_with_the_sequential_fold_on_the_paper_networks() {
    for network in presets::four_networks() {
        let expect = sequential_fold(network.num_procs(), 257);
        for backend in BACKENDS {
            let results = fold_everywhere(&network, backend, 257);
            for (r, got) in results.iter().enumerate() {
                assert_eq!(
                    *got,
                    expect,
                    "{backend} on {}: rank {r} got a wrong fold",
                    network.name()
                );
            }
        }
    }
}

/// The `Linear` allreduce must replay the legacy split schedule
/// message-for-message: same per-rank payloads **and** the same virtual
/// clocks as an explicit linear gather, a rank-order fold at the root,
/// and a linear broadcast of the result. The fold is deliberately
/// non-commutative/non-associative (`a·31 + b`), so any deviation from
/// the star's left-to-right rank order changes the payload.
#[test]
fn linear_allreduce_is_bit_and_timing_identical_to_gather_plus_broadcast() {
    let cfg = CollectiveConfig::linear();
    let fold = |a: WireVec<u32>, b: WireVec<u32>| {
        WireVec(
            a.0.iter()
                .zip(&b.0)
                .map(|(x, y)| x.wrapping_mul(31).wrapping_add(*y))
                .collect::<Vec<u32>>(),
        )
    };
    for network in presets::four_networks() {
        let bits = (64 * 32) as u64;
        let fused = Engine::new(network.clone()).run(|ctx| {
            let own: Vec<u32> = (0..64).map(|i| ctx.rank() as u32 + i).collect();
            let out = coll::allreduce(ctx, &cfg, 0, WireVec(own), fold, bits);
            (out.0, ctx.elapsed())
        });
        let split = Engine::new(network.clone()).run(|ctx| {
            let own: Vec<u32> = (0..64).map(|i| ctx.rank() as u32 + i).collect();
            let folded = coll::gather(ctx, &cfg, 0, WireVec(own), bits).map(|entries| {
                entries
                    .into_iter()
                    .filter_map(coll::GatherEntry::into_msg)
                    .reduce(fold)
                    .expect("root folds its own contribution at least")
            });
            let out = coll::broadcast(ctx, &cfg, 0, folded, bits).expect("valid broadcast");
            (out.0, ctx.elapsed())
        });
        for r in 0..network.num_procs() {
            assert_eq!(
                fused.result(r).0,
                split.result(r).0,
                "payload drift at rank {r} on {}",
                network.name()
            );
            assert!(
                (fused.result(r).1 - split.result(r).1).abs() < 1e-12,
                "clock drift at rank {r} on {}: fused {} vs split {}",
                network.name(),
                fused.result(r).1,
                split.result(r).1
            );
        }
        assert!((fused.total_time - split.total_time).abs() < 1e-12);
    }
}

/// The analytic replay (`coll::predict`) must equal the measured
/// virtual time of an isolated allreduce **exactly** on every concrete
/// schedule and every paper network — the same contract the broadcast/
/// gather models satisfy, extended to the fused up+down schedule
/// sharing one serial-link ledger.
#[test]
fn predicted_allreduce_cost_equals_measured_virtual_time() {
    let concrete = [
        CollAlgorithm::Linear,
        CollAlgorithm::BinomialTree,
        CollAlgorithm::SegmentHierarchical,
    ];
    for network in presets::four_networks() {
        for alg in concrete {
            for len in [32usize, 4_032] {
                let bits = (len * 32) as u64;
                let cfg = CollectiveConfig {
                    allreduce: alg,
                    ..CollectiveConfig::linear()
                };
                let report = Engine::new(network.clone()).run(|ctx| {
                    let own = vec![ctx.rank() as u32; len];
                    coll::allreduce(
                        ctx,
                        &cfg,
                        0,
                        WireVec(own),
                        |a, b| {
                            WireVec(
                                a.0.iter()
                                    .zip(&b.0)
                                    .map(|(x, y)| x.wrapping_add(*y))
                                    .collect(),
                            )
                        },
                        bits,
                    )
                    .0
                    .len()
                });
                let predicted = coll::predict(
                    &network,
                    network.msg_latency_s(),
                    CollOp::Allreduce,
                    alg,
                    0,
                    bits,
                    cfg.pipeline_chunks,
                );
                assert!(
                    (predicted - report.total_time).abs() < 1e-9,
                    "{alg} on {} at {bits} bits: predicted {predicted} vs measured {}",
                    network.name(),
                    report.total_time
                );
                // The logged choice carries the same prediction.
                assert!(
                    (report.collectives[0].predicted_secs - report.total_time).abs() < 1e-9,
                    "{alg} on {}: logged prediction drifts from measurement",
                    network.name()
                );
            }
        }
    }
}

#[test]
fn auto_allreduce_is_never_dominated_on_the_mini_grid() {
    let concrete = [
        CollAlgorithm::Linear,
        CollAlgorithm::BinomialTree,
        CollAlgorithm::SegmentHierarchical,
    ];
    let time = |platform: &Platform, backend: CollAlgorithm, len: usize| {
        let cfg = CollectiveConfig {
            allreduce: backend,
            ..CollectiveConfig::linear()
        };
        Engine::new(platform.clone())
            .run(|ctx| {
                let own = vec![ctx.rank() as u32; len];
                coll::allreduce(
                    ctx,
                    &cfg,
                    0,
                    WireVec(own),
                    |a, b| {
                        WireVec(
                            a.0.iter()
                                .zip(&b.0)
                                .map(|(x, y)| x.wrapping_add(*y))
                                .collect(),
                        )
                    },
                    (len * 32) as u64,
                )
                .0
                .len()
            })
            .total_time
    };
    for platform in [
        presets::fully_heterogeneous(),
        presets::partially_homogeneous(),
    ] {
        for len in [228usize, 4_032] {
            let auto = time(&platform, CollAlgorithm::Auto, len);
            let best = concrete
                .iter()
                .map(|&a| time(&platform, a, len))
                .fold(f64::INFINITY, f64::min);
            assert!(
                auto <= best + 1e-9,
                "auto {auto} dominated by best {best} on {} at {len} words",
                platform.name()
            );
        }
    }
}

/// A contributor crashing before the allreduce removes its whole
/// subtree (its relay parent dies of `PeerLost` forwarding it), and the
/// root folds the survivors — no hang, no abort, and the surviving
/// ranks all receive the degraded result.
#[test]
fn crashed_contributor_degrades_to_a_skipped_subtree() {
    let cfg = CollectiveConfig {
        allreduce: CollAlgorithm::BinomialTree,
        ..CollectiveConfig::linear()
    };
    let engine =
        Engine::new(presets::fully_heterogeneous()).with_faults(FaultPlan::new().crash(3, 0.0));
    let report = engine.run(|ctx| {
        coll::allreduce(
            ctx,
            &cfg,
            0,
            WireVec(vec![1u32 << ctx.rank()]),
            |a, b| WireVec(vec![a.0[0] | b.0[0]]),
            32,
        )
        .0[0]
    });
    // Rank 3 crashed; its binomial parent (rank 2) dies forwarding the
    // loss. Everyone else folds the 14 survivors.
    assert_eq!(report.failures.len(), 2, "failures: {:?}", report.failures);
    assert!(report.failure_of(3).is_some());
    assert!(report.failure_of(2).is_some());
    let expect = (0u32..16).map(|r| 1 << r).sum::<u32>() & !(1 << 2) & !(1 << 3);
    for r in 0..16 {
        match report.results[r] {
            Some(got) => assert_eq!(got, expect, "rank {r} fold"),
            None => assert!(r == 2 || r == 3, "rank {r} unexpectedly failed"),
        }
    }
}

// ---------------------------------------------------------------------
// Fused winner selection in the algorithms
// ---------------------------------------------------------------------

fn fused_cfg() -> CollectiveConfig {
    CollectiveConfig {
        allreduce: CollAlgorithm::BinomialTree,
        ..CollectiveConfig::linear()
    }
}

#[test]
fn fused_ufcls_matches_legacy_outputs_and_is_strictly_faster() {
    let s = tiny_scene();
    let params = AlgoParams {
        num_targets: 6,
        ..Default::default()
    };
    let engine = Engine::new(presets::fully_heterogeneous());
    let legacy = ufcls::run(&engine, &s.cube, &params, &RunOptions::hetero());
    let fused = ufcls::run(
        &engine,
        &s.cube,
        &params,
        &RunOptions::hetero().with_collectives(fused_cfg()),
    );
    assert_eq!(coords(&legacy.result), coords(&fused.result));
    for (a, b) in legacy.result.iter().zip(&fused.result) {
        assert_eq!(a.spectrum, b.spectrum, "spectrum drift under fusion");
    }
    assert!(
        fused.report.total_time < legacy.report.total_time,
        "fused {} !< legacy {}",
        fused.report.total_time,
        legacy.report.total_time
    );
    // One allreduce decision per detection round; the legacy run never
    // issues an allreduce at all.
    assert_eq!(
        fused.report.choices_of(CollOp::Allreduce).count(),
        params.num_targets
    );
    assert_eq!(legacy.report.choices_of(CollOp::Allreduce).count(), 0);
}

#[test]
fn fused_atdca_matches_legacy_outputs_and_is_strictly_faster() {
    let s = tiny_scene();
    let params = AlgoParams {
        num_targets: 8,
        ..Default::default()
    };
    let engine = Engine::new(presets::fully_heterogeneous());
    let legacy = atdca::run(&engine, &s.cube, &params, &RunOptions::hetero());
    let fused = atdca::run(
        &engine,
        &s.cube,
        &params,
        &RunOptions::hetero().with_collectives(fused_cfg()),
    );
    assert_eq!(coords(&legacy.result), coords(&fused.result));
    assert!(
        fused.report.total_time < legacy.report.total_time,
        "fused {} !< legacy {}",
        fused.report.total_time,
        legacy.report.total_time
    );
    assert_eq!(
        fused.report.choices_of(CollOp::Allreduce).count(),
        params.num_targets
    );
}

/// Fused reruns are bit-identical, recorded choices included.
#[test]
fn fused_runs_are_deterministic_across_reruns() {
    let s = tiny_scene();
    let params = AlgoParams {
        num_targets: 5,
        ..Default::default()
    };
    let engine = Engine::new(presets::fully_heterogeneous());
    let options = RunOptions::hetero().with_collectives(CollectiveConfig {
        allreduce: CollAlgorithm::Auto,
        ..CollectiveConfig::linear()
    });
    let a = ufcls::run(&engine, &s.cube, &params, &options);
    let b = ufcls::run(&engine, &s.cube, &params, &options);
    assert_eq!(a.report, b.report, "rerun drift under fused Auto selection");
    for choice in a.report.choices_of(CollOp::Allreduce) {
        assert_eq!(choice.requested, CollAlgorithm::Auto);
        assert_ne!(choice.algorithm, CollAlgorithm::Auto);
    }
}
