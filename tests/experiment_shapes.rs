//! Integration tests asserting the *shapes* of the paper's experimental
//! findings — the qualitative relationships that the benchmark binaries
//! regenerate at full scale (see EXPERIMENTS.md).

use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::simnet::engine::Engine;
use heterospec::simnet::presets;
use heterospec::simnet::report::speedup;

fn scene() -> heterospec::cube::synth::SyntheticScene {
    testutil::scene(256, 64, 128)
}

fn total(
    name: &str,
    engine: &Engine,
    s: &heterospec::cube::synth::SyntheticScene,
    p: &AlgoParams,
    o: &RunOptions,
) -> f64 {
    match name {
        "ATDCA" => {
            heterospec::hetero::par::atdca::run(engine, &s.cube, p, o)
                .report
                .total_time
        }
        "UFCLS" => {
            heterospec::hetero::par::ufcls::run(engine, &s.cube, p, o)
                .report
                .total_time
        }
        "PCT" => {
            heterospec::hetero::par::pct::run(engine, &s.cube, p, o)
                .report
                .total_time
        }
        "MORPH" => {
            heterospec::hetero::par::morph::run(engine, &s.cube, p, o)
                .report
                .total_time
        }
        _ => unreachable!(),
    }
}

/// Table 5 shape: the hetero algorithms adapt — their fully-heterogeneous
/// time is within 2x of their fully-homogeneous time, while the homo
/// versions degrade by much more.
#[test]
fn table5_shape_adaptation() {
    let s = scene();
    let p = AlgoParams::default();
    let het = Engine::new(presets::fully_heterogeneous());
    let hom = Engine::new(presets::fully_homogeneous());
    for algo in ["ATDCA", "MORPH"] {
        let het_on_het = total(algo, &het, &s, &p, &RunOptions::hetero());
        let het_on_hom = total(algo, &hom, &s, &p, &RunOptions::hetero());
        let hom_on_het = total(algo, &het, &s, &p, &RunOptions::homo());
        let ratio_hetero = het_on_het.max(het_on_hom) / het_on_het.min(het_on_hom);
        let ratio_homo = hom_on_het / het_on_het;
        assert!(
            ratio_hetero < 2.0,
            "{algo}: hetero should be roughly flat across networks ({het_on_het:.1} vs {het_on_hom:.1})"
        );
        assert!(
            ratio_homo > 2.0,
            "{algo}: homo on het net should blow up (got {ratio_homo:.1}x)"
        );
    }
}

/// Table 6 shape: communication is a small fraction of total time, and
/// PCT has the largest sequential share of the four algorithms.
#[test]
fn table6_shape_decomposition() {
    struct SeqShare {
        algo: &'static str,
        share: f64,
    }
    let s = scene();
    let p = AlgoParams::default();
    let engine = Engine::new(presets::fully_heterogeneous());
    let mut seq_shares: Vec<SeqShare> = Vec::new();
    for algo in ["ATDCA", "UFCLS", "PCT", "MORPH"] {
        let run = match algo {
            "ATDCA" => {
                heterospec::hetero::par::atdca::run(&engine, &s.cube, &p, &RunOptions::hetero())
                    .report
            }
            "UFCLS" => {
                heterospec::hetero::par::ufcls::run(&engine, &s.cube, &p, &RunOptions::hetero())
                    .report
            }
            "PCT" => {
                heterospec::hetero::par::pct::run(&engine, &s.cube, &p, &RunOptions::hetero())
                    .report
            }
            _ => {
                heterospec::hetero::par::morph::run(&engine, &s.cube, &p, &RunOptions::hetero())
                    .report
            }
        };
        let d = run.decomposition();
        assert!(
            d.com < 0.35 * d.total,
            "{algo}: COM should be a minor share ({:.2} of {:.2})",
            d.com,
            d.total
        );
        seq_shares.push(SeqShare {
            algo,
            share: d.seq / d.total,
        });
    }
    let share_of = |name: &str| {
        seq_shares
            .iter()
            .find(|s| s.algo == name)
            .map(|s| s.share)
            .unwrap()
    };
    let pct_share = share_of("PCT");
    for SeqShare { algo, share } in &seq_shares {
        if *algo != "PCT" {
            assert!(
                pct_share >= *share,
                "PCT SEQ share {pct_share:.3} should exceed {algo}'s {share:.3}"
            );
        }
    }
    // MORPH's SEQ share is the smallest (windowing algorithm).
    assert!(share_of("MORPH") < pct_share);
}

/// Table 7 shape: Hetero-MORPH achieves the best balance of the four
/// heterogeneous algorithms; homogeneous versions on the heterogeneous
/// network are far worse.
#[test]
fn table7_shape_imbalance() {
    let s = scene();
    let p = AlgoParams::default();
    let engine = Engine::new(presets::fully_heterogeneous());
    let morph = heterospec::hetero::par::morph::run(&engine, &s.cube, &p, &RunOptions::hetero())
        .report
        .imbalance();
    let morph_homo = heterospec::hetero::par::morph::run(&engine, &s.cube, &p, &RunOptions::homo())
        .report
        .imbalance();
    assert!(
        morph.d_minus < 2.0,
        "Hetero-MORPH workers should balance well: {}",
        morph.d_minus
    );
    assert!(
        morph_homo.d_minus > 3.0,
        "Homo-MORPH on het net should imbalance: {}",
        morph_homo.d_minus
    );
    assert!(
        morph.d_minus < 0.5 * morph_homo.d_minus,
        "WEA should at least halve the imbalance: {} vs {}",
        morph.d_minus,
        morph_homo.d_minus
    );
}

/// Figure 2 shape: speedups grow with processor count in the paper's
/// range; MORPH scales better than PCT at high counts.
#[test]
fn fig2_shape_scaling() {
    let s = scene();
    let p = AlgoParams::default();
    let mut last = std::collections::HashMap::new();
    for cpus in [1usize, 4, 16, 64] {
        let engine = Engine::new(presets::thunderhead(cpus));
        for algo in ["ATDCA", "PCT", "MORPH"] {
            let t = total(algo, &engine, &s, &p, &RunOptions::hetero());
            last.insert((algo, cpus), t);
        }
    }
    for algo in ["ATDCA", "MORPH"] {
        let s1 = last[&(algo, 1usize)];
        let s64 = speedup(s1, last[&(algo, 64usize)]);
        let s16 = speedup(s1, last[&(algo, 16usize)]);
        assert!(s16 > 3.0, "{algo}: speedup at 16 too low ({s16:.1})");
        assert!(s64 > s16 * 0.8, "{algo}: speedup should not collapse at 64");
    }
    // PCT is allowed to plateau (its sequential eigen step is the
    // paper's explanation for its worst-of-four scaling), but it must
    // still gain from parallelism at moderate counts.
    let pct16 = speedup(last[&("PCT", 1usize)], last[&("PCT", 16usize)]);
    assert!(pct16 > 1.5, "PCT: speedup at 16 too low ({pct16:.1})");
    let morph64 = speedup(last[&("MORPH", 1usize)], last[&("MORPH", 64usize)]);
    let pct64 = speedup(last[&("PCT", 1usize)], last[&("PCT", 64usize)]);
    assert!(
        morph64 > pct64,
        "MORPH ({morph64:.1}x) should out-scale PCT ({pct64:.1}x)"
    );
}

/// Sequential cost ordering (Tables 3-4 parentheses): UFCLS < ATDCA <
/// PCT < MORPH in single-processor time.
#[test]
fn sequential_cost_ordering() {
    let s = scene();
    let p = AlgoParams::default();
    let atdca = heterospec::hetero::seq::atdca(&s.cube, &p).mflops;
    let ufcls = heterospec::hetero::seq::ufcls(&s.cube, &p).mflops;
    let pct = heterospec::hetero::seq::pct(&s.cube, &p).mflops;
    let morph = heterospec::hetero::seq::morph(&s.cube, &p).mflops;
    assert!(ufcls < atdca, "UFCLS {ufcls} !< ATDCA {atdca}");
    assert!(atdca < pct, "ATDCA {atdca} !< PCT {pct}");
    assert!(pct < morph, "PCT {pct} !< MORPH {morph}");
}
