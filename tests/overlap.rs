//! Integration suite for pipelined broadcast/compute overlap
//! (`RunOptions::bcast_overlap`): chunk-overlapped ATDCA and UFCLS must
//! produce **bit-identical** analysis outputs, never run slower on any
//! paper network, run **strictly** faster on the serial-link networks
//! (where endmember rows trickle through the inter-segment links and
//! leaves have gaps to absorb), be an exact no-op under the linear
//! schedule, and be deterministic across reruns — recorded collective
//! choices included.

use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::hetero::framework::ParallelRun;
use heterospec::hetero::par::{atdca, ufcls};
use heterospec::hetero::seq::DetectedTarget;
use heterospec::simnet::engine::Engine;
use heterospec::simnet::{presets, CollAlgorithm, CollectiveConfig, Platform};
use testutil::{coords, tiny_scene};

/// A pipelined-chunked broadcast with the legacy split winner
/// selection: the configuration under which chunk overlap has work to
/// do. (`CollectiveConfig::uniform(PipelinedChunked)` would instead
/// select the *fused* allreduce path, which has no broadcast at all.)
fn chunked_cfg() -> CollectiveConfig {
    CollectiveConfig {
        broadcast: CollAlgorithm::PipelinedChunked,
        ..CollectiveConfig::linear()
    }
}

fn params() -> AlgoParams {
    testutil::params(6, 5)
}

fn run_pair(
    platform: &Platform,
    algo: &str,
) -> (
    ParallelRun<Vec<DetectedTarget>>,
    ParallelRun<Vec<DetectedTarget>>,
) {
    let s = tiny_scene();
    let engine = Engine::new(platform.clone());
    let base = RunOptions::hetero().with_collectives(chunked_cfg());
    let run = |options: &RunOptions| match algo {
        "atdca" => atdca::run(&engine, &s.cube, &params(), options),
        "ufcls" => ufcls::run(&engine, &s.cube, &params(), options),
        _ => unreachable!(),
    };
    let plain = run(&base);
    let overlapped = run(&base.with_bcast_overlap(true));
    (plain, overlapped)
}

#[test]
fn overlap_outputs_are_bit_identical_on_every_paper_network() {
    for network in presets::four_networks() {
        for algo in ["atdca", "ufcls"] {
            let (plain, overlapped) = run_pair(&network, algo);
            assert_eq!(
                coords(&plain.result),
                coords(&overlapped.result),
                "{algo} coordinates drift under overlap on {}",
                network.name()
            );
            for (a, b) in plain.result.iter().zip(&overlapped.result) {
                assert_eq!(
                    a.spectrum,
                    b.spectrum,
                    "{algo} spectrum drift under overlap on {}",
                    network.name()
                );
            }
        }
    }
}

#[test]
fn overlap_never_runs_slower_on_any_paper_network() {
    for network in presets::four_networks() {
        for algo in ["atdca", "ufcls"] {
            let (plain, overlapped) = run_pair(&network, algo);
            assert!(
                overlapped.report.total_time <= plain.report.total_time + 1e-9,
                "{algo} on {}: overlapped {} > plain {}",
                network.name(),
                overlapped.report.total_time,
                plain.report.total_time
            );
        }
    }
}

#[test]
fn overlap_is_strictly_faster_on_the_serial_link_networks() {
    for network in [
        presets::fully_heterogeneous(),
        presets::partially_homogeneous(),
    ] {
        for algo in ["atdca", "ufcls"] {
            let (plain, overlapped) = run_pair(&network, algo);
            assert!(
                overlapped.report.total_time < plain.report.total_time,
                "{algo} on {}: overlapped {} !< plain {}",
                network.name(),
                overlapped.report.total_time,
                plain.report.total_time
            );
        }
    }
}

/// Under the default linear schedule the overlap flag must be an exact
/// no-op: one callback covering the whole follow-up charge, so the full
/// report — every ledger, every recorded choice — compares equal.
#[test]
fn overlap_is_an_exact_noop_under_the_linear_schedule() {
    let s = tiny_scene();
    let engine = Engine::new(presets::fully_heterogeneous());
    for algo in ["atdca", "ufcls"] {
        let run = |options: &RunOptions| match algo {
            "atdca" => atdca::run(&engine, &s.cube, &params(), options),
            "ufcls" => ufcls::run(&engine, &s.cube, &params(), options),
            _ => unreachable!(),
        };
        let off = run(&RunOptions::hetero());
        let on = run(&RunOptions::hetero().with_bcast_overlap(true));
        assert_eq!(coords(&off.result), coords(&on.result), "{algo} output");
        assert_eq!(off.report, on.report, "{algo}: linear overlap not a no-op");
    }
}

/// Overlapped reruns are bit-identical, the collective-choice log
/// included.
#[test]
fn overlapped_runs_are_deterministic_across_reruns() {
    let s = tiny_scene();
    let engine = Engine::new(presets::fully_heterogeneous());
    let options = RunOptions::hetero()
        .with_collectives(chunked_cfg())
        .with_bcast_overlap(true);
    for algo in ["atdca", "ufcls"] {
        let run = || match algo {
            "atdca" => atdca::run(&engine, &s.cube, &params(), &options),
            "ufcls" => ufcls::run(&engine, &s.cube, &params(), &options),
            _ => unreachable!(),
        };
        let a = run();
        let b = run();
        assert_eq!(a.report, b.report, "{algo}: overlapped rerun drift");
        assert!(
            !a.report.collectives.is_empty(),
            "{algo}: choices must be recorded"
        );
    }
}
