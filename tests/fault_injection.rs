//! Fault-injection acceptance suite.
//!
//! The contract of the fault-tolerant drivers (`hetero::ft` over
//! `simnet`'s deterministic fault plans):
//!
//! 1. a worker crash at **any** virtual time still completes the run
//!    with correct results on the survivors, for all four algorithms
//!    and both recovery modes;
//! 2. two runs under the **same** fault plan are bit-identical —
//!    same `RunReport`, same recoveries, same output;
//! 3. the self-scheduling mode uses a fixed chunk grid, so its output
//!    is *identical* with and without crashes (re-planning regrids the
//!    surviving partition, so only accuracy — not equality — is
//!    guaranteed there for the grid-dependent classifiers).

use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::hetero::ft::{run_replan, run_self_sched, FtOptions};
use heterospec::hetero::par::{atdca, ufcls};
use heterospec::hetero::sched::{AtdcaChunks, MorphChunks, PctChunks, UfclsChunks};
use heterospec::hetero::{eval, seq};
use heterospec::simnet::{CollAlgorithm, CollectiveConfig, FailureCause, FaultPlan};

use testutil::{coords, engine_with, tiny_scene as scene};

fn params() -> AlgoParams {
    testutil::params(5, 2)
}

#[test]
fn atdca_survives_crashes_at_any_time_in_both_modes() {
    let s = scene();
    let p = params();
    let want = coords(&seq::atdca(&s.cube, &p).result);
    let algo = AtdcaChunks::new(&s.cube, &p);
    let opts = FtOptions::default();
    for &(rank, at) in &[(2usize, 0.005), (3, 0.05), (7, 0.2), (12, 5.0)] {
        let plan = || FaultPlan::new().crash(rank, at);
        let ss = run_self_sched(&engine_with(plan()), &algo, &opts);
        assert_eq!(coords(&ss.output), want, "self-sched, crash({rank}, {at})");
        let rp = run_replan(&engine_with(plan()), &algo, &opts);
        assert_eq!(coords(&rp.output), want, "replan, crash({rank}, {at})");
        for r in ss.recoveries.iter().chain(&rp.recoveries) {
            assert_eq!(r.rank, rank);
            assert!(r.detected_at >= r.at);
        }
    }
}

#[test]
fn ufcls_survives_a_mid_run_crash_in_both_modes() {
    let s = scene();
    let p = params();
    let want = coords(&seq::ufcls(&s.cube, &p).result);
    let algo = UfclsChunks::new(&s.cube, &p);
    let opts = FtOptions::default();
    let plan = || FaultPlan::new().crash(4, 0.05);
    let ss = run_self_sched(&engine_with(plan()), &algo, &opts);
    assert_eq!(coords(&ss.output), want, "self-sched");
    let rp = run_replan(&engine_with(plan()), &algo, &opts);
    assert_eq!(coords(&rp.output), want, "replan");
}

#[test]
fn two_simultaneous_worker_losses_still_complete() {
    let s = scene();
    let p = params();
    let want = coords(&seq::atdca(&s.cube, &p).result);
    let algo = AtdcaChunks::new(&s.cube, &p);
    let opts = FtOptions::default();
    let plan = || FaultPlan::new().crash(2, 0.03).crash(9, 0.03);
    let ss = run_self_sched(&engine_with(plan()), &algo, &opts);
    assert_eq!(coords(&ss.output), want, "self-sched");
    let rp = run_replan(&engine_with(plan()), &algo, &opts);
    assert_eq!(coords(&rp.output), want, "replan");
}

#[test]
fn pct_self_sched_output_is_invariant_under_crashes() {
    let s = scene();
    let p = params();
    let algo = PctChunks::new(&s.cube, &p);
    let opts = FtOptions::default();
    let clean = run_self_sched(&engine_with(FaultPlan::new()), &algo, &opts);
    let faulty = run_self_sched(&engine_with(FaultPlan::new().crash(5, 0.02)), &algo, &opts);
    // Fixed grid: the label image and model are bit-identical whether or
    // not a worker died mid-run.
    assert_eq!(clean.output.0.as_slice(), faulty.output.0.as_slice());
    assert_eq!(clean.output.1.mean, faulty.output.1.mean);
    assert_eq!(clean.output.1.class_reps, faulty.output.1.class_reps);
    assert!(clean.recoveries.is_empty());
    assert!(!faulty.recoveries.is_empty());
}

#[test]
fn pct_replan_labels_stay_sound_after_a_crash() {
    let s = scene();
    let p = params();
    let algo = PctChunks::new(&s.cube, &p);
    let run = run_replan(
        &engine_with(FaultPlan::new().crash(3, 0.02)),
        &algo,
        &FtOptions::default(),
    );
    let (labels, _) = run.output;
    assert_eq!(labels.lines(), s.cube.lines());
    for &l in labels.as_slice() {
        assert!((l as usize) < p.num_classes);
    }
    let acc = heterospec::cube::labels::score(&labels, &s.truth).overall;
    assert!(acc > 25.0, "replan PCT accuracy after crash: {acc:.1}%");
}

#[test]
fn morph_self_sched_output_is_invariant_under_crashes() {
    let s = scene();
    let p = params();
    let algo = MorphChunks::new(&s.cube, &p);
    let opts = FtOptions::default();
    let clean = run_self_sched(&engine_with(FaultPlan::new()), &algo, &opts);
    let faulty = run_self_sched(&engine_with(FaultPlan::new().crash(6, 0.05)), &algo, &opts);
    assert_eq!(clean.output.0.as_slice(), faulty.output.0.as_slice());
    assert_eq!(clean.output.1, faulty.output.1);
}

#[test]
fn morph_replan_labels_stay_sound_after_a_crash() {
    let s = scene();
    let p = params();
    let algo = MorphChunks::new(&s.cube, &p);
    let run = run_replan(
        &engine_with(FaultPlan::new().crash(8, 0.05)),
        &algo,
        &FtOptions::default(),
    );
    let (labels, _) = run.output;
    for &l in labels.as_slice() {
        assert!((l as usize) < p.num_classes);
    }
    let acc = eval::debris_accuracy(&s, &labels, 7).overall;
    assert!(acc > 30.0, "replan MORPH accuracy after crash: {acc:.1}%");
}

#[test]
fn identical_fault_plans_give_bit_identical_runs() {
    let s = scene();
    let p = params();
    let algo = AtdcaChunks::new(&s.cube, &p);
    let opts = FtOptions::default();
    let plan = || {
        FaultPlan::new()
            .crash(2, 0.04)
            .slowdown(5, 0.0, 0.3, 2.5)
            .link_outage(0, 7, 0.01, 0.05)
    };
    let a = run_self_sched(&engine_with(plan()), &algo, &opts);
    let b = run_self_sched(&engine_with(plan()), &algo, &opts);
    assert_eq!(a.report, b.report);
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(coords(&a.output), coords(&b.output));
    let c = run_replan(&engine_with(plan()), &algo, &opts);
    let d = run_replan(&engine_with(plan()), &algo, &opts);
    assert_eq!(c.report, d.report);
    assert_eq!(c.recoveries, d.recoveries);
}

/// A worker crashing mid-run under the **fused allreduce** winner
/// selection must degrade structurally: its whole subtree surfaces as
/// `RankFailure` records (`Crash` for the victim, `PeerLost` for the
/// relays forwarding the loss), the root keeps folding the survivors —
/// no hang, no abort — and identical plans replay bit-identically.
#[test]
fn worker_crash_mid_allreduce_degrades_structurally() {
    let s = scene();
    let p = params();
    let options = RunOptions::hetero().with_collectives(CollectiveConfig {
        allreduce: CollAlgorithm::BinomialTree,
        ..CollectiveConfig::linear()
    });
    let run = || {
        ufcls::run(
            &engine_with(FaultPlan::new().crash(8, 0.01)),
            &s.cube,
            &p,
            &options,
        )
    };
    let out = run();
    // The root completed every round over the survivors.
    assert_eq!(out.result.len(), p.num_targets);
    assert!(!out.report.ok());
    let f = out.report.failure_of(8).expect("crash recorded");
    assert_eq!(f.cause, FailureCause::Crash);
    for failure in &out.report.failures {
        assert!(
            failure.rank == 8 || matches!(failure.cause, FailureCause::PeerLost { .. }),
            "unexpected failure {failure:?}"
        );
        assert!(failure.rank != 0, "the root must survive");
    }
    let again = run();
    assert_eq!(out.report, again.report, "fused crash rerun drift");
    assert_eq!(coords(&out.result), coords(&again.result));
}

/// The same contract for a crash under the chunk-overlapped pipelined
/// broadcast: structured failures, a surviving root with a full target
/// list, and bit-identical replays.
#[test]
fn worker_crash_mid_overlapped_broadcast_degrades_structurally() {
    let s = scene();
    let p = params();
    let options = RunOptions::hetero()
        .with_collectives(CollectiveConfig {
            broadcast: CollAlgorithm::PipelinedChunked,
            ..CollectiveConfig::linear()
        })
        .with_bcast_overlap(true);
    let run = || {
        atdca::run(
            &engine_with(FaultPlan::new().crash(5, 0.01)),
            &s.cube,
            &p,
            &options,
        )
    };
    let out = run();
    assert_eq!(out.result.len(), p.num_targets);
    assert!(!out.report.ok());
    let f = out.report.failure_of(5).expect("crash recorded");
    assert_eq!(f.cause, FailureCause::Crash);
    for failure in &out.report.failures {
        assert!(
            failure.rank == 5 || matches!(failure.cause, FailureCause::PeerLost { .. }),
            "unexpected failure {failure:?}"
        );
        assert!(failure.rank != 0, "the root must survive");
    }
    let again = run();
    assert_eq!(out.report, again.report, "overlapped crash rerun drift");
    assert_eq!(coords(&out.result), coords(&again.result));
}

#[test]
fn crashes_are_recorded_as_structured_failures() {
    let s = scene();
    let p = params();
    let algo = AtdcaChunks::new(&s.cube, &p);
    let run = run_self_sched(
        &engine_with(FaultPlan::new().crash(3, 0.05)),
        &algo,
        &FtOptions::default(),
    );
    assert!(!run.report.ok());
    let f = run.report.failure_of(3).expect("rank 3 failure recorded");
    assert_eq!(f.cause, FailureCause::Crash);
    assert!((f.at - 0.05).abs() < 1e-12);
    assert!(run.report.failure_of(1).is_none());
}

/// Epoch-stamped tree mode: the round state travels down the survivor
/// tree instead of the linear master fan-out. An interior relay (a
/// segment leader) crashing at any point — before the round, mid state
/// distribution, mid compute — must leave the fixed-grid self-sched
/// output untouched and the replan output correct, bump the membership
/// epoch exactly once per observed loss, and replay bit-identically.
#[test]
fn tree_mode_interior_relay_crashes_keep_every_contribution() {
    let s = scene();
    let p = params();
    let want = coords(&seq::atdca(&s.cube, &p).result);
    let algo = AtdcaChunks::new(&s.cube, &p);
    let opts = FtOptions {
        collectives: CollectiveConfig::uniform(CollAlgorithm::SegmentHierarchical),
        ..FtOptions::default()
    };
    // Ranks 4 and 10 lead segments 1 and 3 of `fully_heterogeneous` —
    // both relay the round state onward in the segment-hierarchical
    // tree. The times span barrier-phase and compute-phase crashes.
    for &(rank, at) in &[(4usize, 0.0001), (4, 0.05), (10, 0.01), (10, 0.2)] {
        let plan = || FaultPlan::new().crash(rank, at);
        let ss = run_self_sched(&engine_with(plan()), &algo, &opts);
        assert_eq!(
            coords(&ss.output),
            want,
            "tree self-sched crash({rank},{at})"
        );
        let rp = run_replan(&engine_with(plan()), &algo, &opts);
        assert_eq!(coords(&rp.output), want, "tree replan crash({rank},{at})");
        for run in [&ss, &rp] {
            // One epoch bump per observed loss, naming the lost rank.
            assert_eq!(run.report.epochs.len(), run.recoveries.len());
            for (e, r) in run.report.epochs.iter().zip(&run.recoveries) {
                assert_eq!(e.failed, rank);
                assert_eq!(r.rank, rank);
                assert_eq!(e.survivors, 15, "one loss of 16 ranks");
            }
        }
        if at <= 0.05 {
            assert!(!ss.recoveries.is_empty(), "crash({rank},{at}) must be seen");
        }
        let ss2 = run_self_sched(&engine_with(plan()), &algo, &opts);
        assert_eq!(ss.report, ss2.report, "tree self-sched rerun drift");
        assert_eq!(coords(&ss2.output), want);
        let rp2 = run_replan(&engine_with(plan()), &algo, &opts);
        assert_eq!(rp.report, rp2.report, "tree replan rerun drift");
    }
}

/// Tree mode under the cost-model selector: `Auto` must resolve to a
/// concrete schedule per round and still survive a relay crash.
#[test]
fn tree_mode_auto_survives_a_relay_crash() {
    let s = scene();
    let p = params();
    let want = coords(&seq::atdca(&s.cube, &p).result);
    let algo = AtdcaChunks::new(&s.cube, &p);
    let opts = FtOptions {
        collectives: CollectiveConfig::uniform(CollAlgorithm::Auto),
        ..FtOptions::default()
    };
    let run = run_self_sched(&engine_with(FaultPlan::new().crash(8, 0.02)), &algo, &opts);
    assert_eq!(coords(&run.output), want);
    assert_eq!(run.report.epochs.len(), run.recoveries.len());
}
