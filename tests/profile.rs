//! Profiler acceptance suite.
//!
//! Contract of `simnet::prof` as wired through the full stack:
//!
//! 1. the **accounting identity** — every rank's eight-phase fold equals
//!    its wall-clock bitwise (`f64::to_bits`, no epsilon) — holds for
//!    all four algorithms on all four paper networks, and for both
//!    fault-tolerant drivers under every offload policy;
//! 2. the critical path is **bounded** (`length ≤ makespan`,
//!    `fl(length + slack) == makespan`) and **deterministic** across
//!    reruns, including its bottleneck attribution;
//! 3. crash plans shift attribution **structurally**: a recovery phase
//!    appears on affected ranks while the totals stay exact;
//! 4. profiling is an **observer**: results and the timing report are
//!    bit-identical with and without it (only `RunReport::profile`
//!    differs);
//! 5. the Chrome-trace exporter emits a well-formed JSON event array
//!    for any profiled run.

use heterospec::hetero::config::RunOptions;
use heterospec::hetero::ft::{run_replan, run_self_sched};
use heterospec::hetero::par::{atdca, morph, pct, ufcls};
use heterospec::hetero::sched::AtdcaChunks;
use heterospec::hetero::OffloadPolicy;
use heterospec::simnet::engine::{Ctx, Engine};
use heterospec::simnet::{chrome_trace, presets, FaultPlan, RunReport};
use testutil::{assert_profile_exact, coords, engine_with, ft_opts, tiny_scene, POLICIES};

fn params() -> heterospec::hetero::config::AlgoParams {
    testutil::params(5, 2)
}

/// Identity + path bounds across the full algorithm × network matrix.
#[test]
fn identity_holds_for_all_algorithms_on_all_networks() {
    let s = tiny_scene();
    let p = params();
    let o = RunOptions::hetero();
    for platform in presets::four_networks() {
        let name = platform.name().to_string();
        let engine = Engine::new(platform).with_profiling(true);
        let reports: [(&str, RunReport<()>); 4] = [
            ("ATDCA", atdca::run(&engine, &s.cube, &p, &o).report),
            ("UFCLS", ufcls::run(&engine, &s.cube, &p, &o).report),
            ("PCT", pct::run(&engine, &s.cube, &p, &o).report),
            ("MORPH", morph::run(&engine, &s.cube, &p, &o).report),
        ];
        for (algo, report) in &reports {
            let profile = assert_profile_exact(report);
            assert!(!profile.ranks.is_empty(), "{algo} on {name}: empty profile");
            assert!(
                profile.makespan > 0.0,
                "{algo} on {name}: degenerate makespan"
            );
            assert!(
                profile.critical_path.bottleneck.seconds > 0.0,
                "{algo} on {name}: no bottleneck attributed"
            );
        }
    }
}

/// Both fault-tolerant drivers keep the identity under every offload
/// policy on the device-bearing preset (offload phases in the fold).
#[test]
fn ft_drivers_profile_exactly_under_every_offload_policy() {
    let s = tiny_scene();
    let p = params();
    let algo = AtdcaChunks::new(&s.cube, &p);
    for policy in POLICIES {
        let opts = ft_opts(policy);
        let engine = Engine::new(presets::accel_heterogeneous()).with_profiling(true);
        let ss = run_self_sched(&engine, &algo, &opts);
        let ss_prof = assert_profile_exact(&ss.report);
        let rp = run_replan(&engine, &algo, &opts);
        let rp_prof = assert_profile_exact(&rp.report);
        for prof in [ss_prof, rp_prof] {
            assert!(
                prof.ranks.iter().all(|r| r.phases.recovery == 0.0),
                "{policy:?}: clean run must have no recovery phase"
            );
        }
        if policy == OffloadPolicy::Always {
            assert!(
                ss_prof.ranks.iter().any(|r| r.phases.offload > 0.0),
                "Always: some rank must spend offload time"
            );
        }
    }
}

/// Rerunning the same configuration reproduces the profile bit for bit:
/// same phase breakdowns, same critical path, same bottleneck.
#[test]
fn critical_path_is_deterministic_across_reruns() {
    let s = tiny_scene();
    let p = params();
    let run = || {
        let engine = Engine::new(presets::fully_heterogeneous()).with_profiling(true);
        morph::run(&engine, &s.cube, &p, &RunOptions::hetero()).report
    };
    let first = run();
    let second = run();
    let pa = assert_profile_exact(&first);
    let pb = assert_profile_exact(&second);
    assert_eq!(pa, pb, "profiles differ between identical reruns");
    assert_eq!(
        pa.critical_path.bottleneck.owner, pb.critical_path.bottleneck.owner,
        "bottleneck attribution differs between identical reruns"
    );
    assert!(!pa.summary().is_empty() && !pa.bottleneck_line().is_empty());
}

/// A crash plan changes the profile structurally — a recovery phase
/// appears on at least one rank — while every rank's fold stays exact
/// and the surviving output is unchanged.
#[test]
fn crash_plans_surface_a_recovery_phase_and_keep_totals_exact() {
    let s = tiny_scene();
    let p = params();
    let algo = AtdcaChunks::new(&s.cube, &p);
    let opts = ft_opts(OffloadPolicy::Never);

    let clean_engine = engine_with(FaultPlan::new()).with_profiling(true);
    let clean = run_self_sched(&clean_engine, &algo, &opts);
    let clean_prof = assert_profile_exact(&clean.report);
    assert!(
        clean_prof.ranks.iter().all(|r| r.phases.recovery == 0.0),
        "clean run must have no recovery phase"
    );

    let crash_engine = engine_with(FaultPlan::new().crash(5, 0.02)).with_profiling(true);
    let faulty = run_self_sched(&crash_engine, &algo, &opts);
    assert_eq!(
        coords(&faulty.output),
        coords(&clean.output),
        "self-sched output must survive the crash"
    );
    let prof = assert_profile_exact(&faulty.report);
    assert!(
        prof.ranks.iter().any(|r| r.phases.recovery > 0.0),
        "crash run must attribute recovery time on some rank"
    );
    assert!(
        prof.ranks.iter().any(|r| r.epoch_bumps > 0),
        "crash run must record an epoch transition"
    );
}

/// Profiling is a pure observer: result coordinates and the timing
/// report are bit-identical with and without it once the `profile`
/// field is cleared.
#[test]
fn profiling_never_perturbs_results_or_virtual_time() {
    let s = tiny_scene();
    let p = params();
    let o = RunOptions::hetero();
    let platform = presets::fully_heterogeneous();
    let profiled = atdca::run(
        &Engine::new(platform.clone()).with_profiling(true),
        &s.cube,
        &p,
        &o,
    );
    let plain = atdca::run(&Engine::new(platform), &s.cube, &p, &o);
    assert!(profiled.report.profile.is_some());
    assert!(plain.report.profile.is_none());
    assert_eq!(coords(&profiled.result), coords(&plain.result));
    let mut stripped = profiled.report;
    stripped.profile = None;
    assert_eq!(
        stripped, plain.report,
        "profiling must not change the timing report"
    );
}

/// The Chrome-trace exporter produces a well-formed JSON event array
/// whose spans cover the phases the profile accounts for.
#[test]
fn chrome_trace_export_covers_profiled_runs() {
    let engine = Engine::new(presets::fully_heterogeneous()).with_profiling(true);
    let (report, trace) = engine.run_traced(|ctx: &mut Ctx<u64>| {
        ctx.compute_par(0.5 * (ctx.rank() as f64 + 1.0));
        if ctx.is_root() {
            for src in 1..ctx.num_ranks() {
                let got = ctx.recv(src);
                assert_eq!(got, src as u64);
            }
        } else {
            let rank = ctx.rank() as u64;
            ctx.send(0, rank);
        }
    });
    assert_profile_exact(&report);
    let json = chrome_trace(&trace);
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    for needle in ["\"ph\":\"X\"", "compute_par", "send", "recv"] {
        assert!(json.contains(needle), "chrome trace missing {needle}");
    }
}
