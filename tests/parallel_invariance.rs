//! Regression: the kernel-thread pool must be **invisible** to the
//! virtual-time simulation. Every experiment output (the quantities
//! behind Tables 3–8 and Figures 1–2 — total times, COM/SEQ/PAR
//! decompositions, imbalance ratios, per-rank ledgers) and every
//! analysis result must be byte-identical whether the engine runs its
//! rank programs on 1 kernel thread or many.
//!
//! Virtual time is analytic (Mflop counts × per-processor cycle times),
//! and the data-parallel kernels are bit-identical to their sequential
//! scans — so *exact* equality is the contract, not approximate.

use heterospec::cube::synth::{wtc_scene, WtcConfig};
use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::simnet::engine::Engine;
use heterospec::simnet::presets;

fn scene() -> heterospec::cube::synth::SyntheticScene {
    wtc_scene(WtcConfig {
        lines: 48,
        samples: 32,
        bands: 32,
        ..Default::default()
    })
}

fn params() -> AlgoParams {
    AlgoParams {
        num_targets: 4,
        morph_iterations: 2,
        ..Default::default()
    }
}

/// Bitwise equality of two run reports: ledgers, totals, decomposition,
/// imbalance.
fn assert_reports_identical(
    a: &heterospec::simnet::report::RunReport<()>,
    b: &heterospec::simnet::report::RunReport<()>,
    what: &str,
) {
    assert_eq!(a.total_time, b.total_time, "{what}: total_time");
    assert_eq!(a.ledgers, b.ledgers, "{what}: per-rank ledgers");
    let (da, db) = (a.decomposition(), b.decomposition());
    assert_eq!(
        (da.com, da.seq, da.par),
        (db.com, db.seq, db.par),
        "{what}: COM/SEQ/PAR decomposition"
    );
    let (ia, ib) = (a.imbalance(), b.imbalance());
    assert_eq!(
        (ia.d_all, ia.d_minus),
        (ib.d_all, ib.d_minus),
        "{what}: imbalance ratios"
    );
}

fn engines() -> (Engine, Engine) {
    (
        Engine::new(presets::fully_heterogeneous()).with_threads_per_rank(1),
        Engine::new(presets::fully_heterogeneous()).with_threads_per_rank(4),
    )
}

#[test]
fn atdca_virtual_time_unchanged_by_kernel_threads() {
    let s = scene();
    let p = params();
    let (e1, e4) = engines();
    for options in [RunOptions::hetero(), RunOptions::homo()] {
        let a = heterospec::hetero::par::atdca::run(&e1, &s.cube, &p, &options);
        let b = heterospec::hetero::par::atdca::run(&e4, &s.cube, &p, &options);
        assert_eq!(a.result, b.result, "ATDCA targets");
        assert_reports_identical(&a.report, &b.report, "ATDCA");
    }
}

#[test]
fn ufcls_virtual_time_unchanged_by_kernel_threads() {
    let s = scene();
    let p = params();
    let (e1, e4) = engines();
    let a = heterospec::hetero::par::ufcls::run(&e1, &s.cube, &p, &RunOptions::hetero());
    let b = heterospec::hetero::par::ufcls::run(&e4, &s.cube, &p, &RunOptions::hetero());
    assert_eq!(a.result, b.result, "UFCLS targets");
    assert_reports_identical(&a.report, &b.report, "UFCLS");
}

#[test]
fn pct_virtual_time_unchanged_by_kernel_threads() {
    let s = scene();
    let p = params();
    let (e1, e4) = engines();
    let a = heterospec::hetero::par::pct::run(&e1, &s.cube, &p, &RunOptions::hetero());
    let b = heterospec::hetero::par::pct::run(&e4, &s.cube, &p, &RunOptions::hetero());
    assert_eq!(a.result.0, b.result.0, "PCT label image");
    assert_eq!(a.result.1.mean, b.result.1.mean, "PCT mean");
    assert_eq!(
        a.result.1.class_reps, b.result.1.class_reps,
        "PCT class representatives"
    );
    assert_reports_identical(&a.report, &b.report, "PCT");
}

#[test]
fn morph_virtual_time_unchanged_by_kernel_threads() {
    let s = scene();
    let p = params();
    let (e1, e4) = engines();
    let a = heterospec::hetero::par::morph::run(&e1, &s.cube, &p, &RunOptions::hetero());
    let b = heterospec::hetero::par::morph::run(&e4, &s.cube, &p, &RunOptions::hetero());
    assert_eq!(a.result.0, b.result.0, "MORPH label image");
    assert_eq!(a.result.1, b.result.1, "MORPH endmember spectra");
    assert_reports_identical(&a.report, &b.report, "MORPH");
}

/// The automatic thread width (`cores / ranks`, clamped to ≥ 1) is what
/// `Engine::new` uses; pinning it explicitly must not change anything
/// either.
#[test]
fn default_width_matches_explicit() {
    let s = scene();
    let p = params();
    let auto = Engine::new(presets::fully_heterogeneous());
    let pinned =
        Engine::new(presets::fully_heterogeneous()).with_threads_per_rank(auto.threads_per_rank());
    let a = heterospec::hetero::par::atdca::run(&auto, &s.cube, &p, &RunOptions::hetero());
    let b = heterospec::hetero::par::atdca::run(&pinned, &s.cube, &p, &RunOptions::hetero());
    assert_eq!(a.result, b.result);
    assert_reports_identical(&a.report, &b.report, "ATDCA auto-vs-pinned");
}
