//! Cross-crate integration tests: the full pipeline from synthetic scene
//! through parallel execution to evaluation, asserting the invariants
//! that tie the workspace together.

use heterospec::hetero::config::{AlgoParams, OverlapPolicy, RunOptions};
use heterospec::hetero::eval::{debris_accuracy, target_table};
use heterospec::simnet::engine::Engine;
use heterospec::simnet::presets;

fn scene() -> heterospec::cube::synth::SyntheticScene {
    testutil::scene(96, 64, 96)
}

fn params() -> AlgoParams {
    testutil::params(10, 3)
}

/// Target detection must be invariant to the platform: the same pixels
/// are found on every network, under both partitioning strategies, as
/// by the sequential reference.
#[test]
fn atdca_platform_invariance() {
    let s = scene();
    let p = params();
    let reference: Vec<(usize, usize)> = heterospec::hetero::seq::atdca(&s.cube, &p)
        .result
        .iter()
        .map(|t| (t.line, t.sample))
        .collect();
    for platform in [
        presets::fully_heterogeneous(),
        presets::partially_homogeneous(),
        presets::thunderhead(7),
    ] {
        for options in [RunOptions::hetero(), RunOptions::homo()] {
            let engine = Engine::new(platform.clone());
            let run = heterospec::hetero::par::atdca::run(&engine, &s.cube, &p, &options);
            let got: Vec<(usize, usize)> = run.result.iter().map(|t| (t.line, t.sample)).collect();
            assert_eq!(
                got,
                reference,
                "ATDCA differs on {} / {:?}",
                platform.name(),
                options.strategy
            );
        }
    }
}

/// Same invariance for UFCLS.
#[test]
fn ufcls_platform_invariance() {
    let s = scene();
    let p = AlgoParams {
        num_targets: 6,
        ..params()
    };
    let reference: Vec<(usize, usize)> = heterospec::hetero::seq::ufcls(&s.cube, &p)
        .result
        .iter()
        .map(|t| (t.line, t.sample))
        .collect();
    for platform in [presets::fully_heterogeneous(), presets::thunderhead(5)] {
        let engine = Engine::new(platform);
        let run = heterospec::hetero::par::ufcls::run(&engine, &s.cube, &p, &RunOptions::hetero());
        let got: Vec<(usize, usize)> = run.result.iter().map(|t| (t.line, t.sample)).collect();
        assert_eq!(got, reference);
    }
}

/// Both detectors locate every thermal hot spot on this scene.
#[test]
fn both_detectors_find_all_hot_spots() {
    let s = scene();
    let p = AlgoParams {
        num_targets: 18,
        ..params()
    };
    let engine = Engine::new(presets::fully_heterogeneous());
    for table in [
        target_table(
            &s,
            &heterospec::hetero::par::atdca::run(&engine, &s.cube, &p, &RunOptions::hetero())
                .result,
        ),
        target_table(
            &s,
            &heterospec::hetero::par::ufcls::run(&engine, &s.cube, &p, &RunOptions::hetero())
                .result,
        ),
    ] {
        for m in table {
            assert!(m.sad < 0.01, "hot spot {} missed: SAD {}", m.name, m.sad);
        }
    }
}

/// The paper's core performance claim: on CPU-heterogeneous networks the
/// heterogeneous algorithms beat their homogeneous versions decisively;
/// on the homogeneous network they are no worse than ~equal.
#[test]
fn hetero_dominates_on_heterogeneous_networks() {
    let s = scene();
    let p = params();
    {
        let (run_fn, name) = (
            heterospec::hetero::par::atdca::run
                as fn(&Engine, &_, &_, &_) -> heterospec::hetero::ParallelRun<_>,
            "ATDCA",
        );
        let het_net = Engine::new(presets::fully_heterogeneous());
        let hom_net = Engine::new(presets::fully_homogeneous());
        let t_het_on_het = run_fn(&het_net, &s.cube, &p, &RunOptions::hetero())
            .report
            .total_time;
        let t_hom_on_het = run_fn(&het_net, &s.cube, &p, &RunOptions::homo())
            .report
            .total_time;
        let t_het_on_hom = run_fn(&hom_net, &s.cube, &p, &RunOptions::hetero())
            .report
            .total_time;
        let t_hom_on_hom = run_fn(&hom_net, &s.cube, &p, &RunOptions::homo())
            .report
            .total_time;
        assert!(
            t_hom_on_het > 2.0 * t_het_on_het,
            "{name}: homo {t_hom_on_het} vs hetero {t_het_on_het} on het net"
        );
        assert!(
            t_het_on_hom < 1.2 * t_hom_on_hom,
            "{name}: hetero {t_het_on_hom} vs homo {t_hom_on_hom} on hom net"
        );
    }
}

/// Classification quality: MORPH beats PCT on the debris classes (the
/// paper's Table 4 conclusion) and both run end-to-end on all networks.
#[test]
fn morph_beats_pct_on_debris_classes() {
    let s = scene();
    let p = params();
    let engine = Engine::new(presets::fully_heterogeneous());
    let morph = heterospec::hetero::par::morph::run(&engine, &s.cube, &p, &RunOptions::hetero());
    let pct = heterospec::hetero::par::pct::run(&engine, &s.cube, &p, &RunOptions::hetero());
    let a_morph = debris_accuracy(&s, &morph.result.0, 7).overall;
    let a_pct = debris_accuracy(&s, &pct.result.0, 7).overall;
    assert!(
        a_morph > a_pct,
        "MORPH {a_morph:.1}% should beat PCT {a_pct:.1}%"
    );
    assert!(a_morph > 50.0, "MORPH accuracy too low: {a_morph:.1}%");
}

/// Full determinism: two identical parallel runs give identical results
/// and identical virtual times, despite real multithreading.
#[test]
fn parallel_runs_are_deterministic() {
    let s = scene();
    let p = params();
    let run = || {
        let engine = Engine::new(presets::fully_heterogeneous());
        let r = heterospec::hetero::par::morph::run(&engine, &s.cube, &p, &RunOptions::hetero());
        (r.result.0, r.report)
    };
    let (labels_a, report_a) = run();
    let (labels_b, report_b) = run();
    assert_eq!(
        labels_a.as_slice(),
        labels_b.as_slice(),
        "labels differ between runs"
    );
    assert_eq!(
        report_a.total_time, report_b.total_time,
        "total time differs between runs"
    );
    assert_eq!(
        report_a.decomposition().com,
        report_b.decomposition().com,
        "COM differs between runs"
    );
}

/// Exact-overlap MORPH on any processor count reproduces the sequential
/// MEI-derived labels when the candidate sets coincide — here we check
/// the weaker, always-true invariant: every pixel is labeled and the
/// label set is bounded by the representative count.
#[test]
fn morph_labels_well_formed_across_platforms() {
    let s = scene();
    let p = params();
    for cpus in [2usize, 5, 16] {
        let engine = Engine::new(presets::thunderhead(cpus));
        let options = RunOptions {
            morph_overlap: OverlapPolicy::Exact,
            ..RunOptions::hetero()
        };
        let run = heterospec::hetero::par::morph::run(&engine, &s.cube, &p, &options);
        let (labels, reps) = &run.result;
        assert_eq!(labels.lines(), s.cube.lines());
        assert!(!reps.is_empty() && reps.len() <= p.num_classes);
        for &l in labels.as_slice() {
            assert!((l as usize) < reps.len());
        }
    }
}

/// Degenerate geometry: more processors than image lines — some ranks
/// legitimately receive zero rows and every algorithm must still
/// terminate with correct results.
#[test]
fn more_processors_than_lines() {
    let s = testutil::scene(5, 24, 32);
    let p = AlgoParams {
        num_targets: 4,
        num_classes: 4,
        morph_iterations: 2,
        ..Default::default()
    };
    let engine = Engine::new(presets::thunderhead(9)); // 9 ranks, 5 lines
    let atdca = heterospec::hetero::par::atdca::run(&engine, &s.cube, &p, &RunOptions::homo());
    assert_eq!(atdca.result.len(), 4);
    let seq = heterospec::hetero::seq::atdca(&s.cube, &p);
    for (a, b) in atdca.result.iter().zip(&seq.result) {
        assert_eq!((a.line, a.sample), (b.line, b.sample));
    }
    let morph = heterospec::hetero::par::morph::run(&engine, &s.cube, &p, &RunOptions::homo());
    assert_eq!(morph.result.0.lines(), 5);
    let pct = heterospec::hetero::par::pct::run(&engine, &s.cube, &p, &RunOptions::homo());
    assert_eq!(pct.result.0.lines(), 5);
}

/// Band selection composes with the pipeline: dropping the water
/// absorption windows (standard AVIRIS preprocessing) leaves detection
/// results intact.
#[test]
fn water_band_removal_preserves_detection() {
    use heterospec::cube::synth::bands::good_bands;
    let s = testutil::scene(64, 48, 128);
    let p = AlgoParams {
        num_targets: 14,
        ..Default::default()
    };
    let full = heterospec::hetero::seq::atdca(&s.cube, &p);
    let subset = s.cube.select_bands(&good_bands(128));
    assert!(subset.bands() < 128);
    let reduced = heterospec::hetero::seq::atdca(&subset, &p);
    // The hot spots must still be among the detections (coordinates are
    // band-selection invariant even if the greedy order shifts).
    let reduced_coords: Vec<(usize, usize)> =
        reduced.result.iter().map(|t| (t.line, t.sample)).collect();
    let mut hot_hits = 0;
    for t in &s.targets {
        if reduced_coords.contains(&t.coord) {
            hot_hits += 1;
        }
    }
    // Some per-fire emission features sit inside the removed windows,
    // so a detection or two may legitimately drop.
    assert!(
        hot_hits >= 5,
        "only {hot_hits}/7 hot spots survive band removal"
    );
    let _ = full;
}

/// The supervised SAM ceiling: classification with the true library
/// beats every unsupervised method, and the unsupervised MORPH gets
/// close to it.
#[test]
fn sam_ceiling_vs_unsupervised_morph() {
    use heterospec::cube::library::SpectralLibrary;
    let s = scene();
    let p = params();
    let lib = SpectralLibrary::from_scene(&s);
    let sam = lib.classify(&s.cube, f64::INFINITY);
    let ceiling = debris_accuracy(&s, &sam, 7).overall;
    let engine = Engine::new(presets::fully_heterogeneous());
    let morph = heterospec::hetero::par::morph::run(&engine, &s.cube, &p, &RunOptions::hetero());
    let unsup = debris_accuracy(&s, &morph.result.0, 7).overall;
    assert!(ceiling >= unsup - 1.0, "ceiling {ceiling} vs morph {unsup}");
    assert!(
        unsup > 0.7 * ceiling,
        "MORPH ({unsup:.1}) should approach the SAM ceiling ({ceiling:.1})"
    );
}

/// Memory bounds: a platform whose nodes cannot hold the whole image
/// still partitions successfully (WEA's recursive redistribution), and
/// an impossible image panics cleanly.
#[test]
fn memory_bounded_partitioning() {
    use heterospec::simnet::{Platform, ProcessorSpec};
    let tiny_mem = |mb: u64| -> Platform {
        let procs = (0..4)
            .map(|i| ProcessorSpec {
                name: format!("n{i}"),
                arch: "test",
                cycle_time: 0.01,
                memory_mb: mb,
                cache_kb: 0,
                segment: 0,
                device: None,
            })
            .collect();
        let links = (0..4)
            .map(|i| (0..4).map(|j| if i == j { 0.0 } else { 1.0 }).collect())
            .collect();
        Platform::new("tiny-mem", procs, links)
    };
    let s = scene(); // 96x64x96 f32 = ~2.3 MB => ~0.6 MB per node needed
    let p = params();
    let engine = Engine::new(tiny_mem(1)); // 1 MB per node: tight but fits 4x
    let run = heterospec::hetero::par::atdca::run(&engine, &s.cube, &p, &RunOptions::hetero());
    assert_eq!(run.result.len(), p.num_targets);
}
