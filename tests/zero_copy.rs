//! Zero-copy shared payloads: `Arc`-backed wire messages must be
//! *invisible* to the simulation. A run whose payloads travel as
//! `Arc<M>` refcount bumps must be bit-identical — ledgers, virtual
//! times, payload contents, and the recorded collective-choice log — to
//! the same run shipping owned `M` values, on every network shape and
//! rank count. Only the host-side copy telemetry (`CopyStats`, excluded
//! from the report's `PartialEq` contract) may differ: owned payloads
//! deep-copy at every fan-out clone, shared ones never do.

use heterospec::simnet::engine::{Engine, WireVec};
use heterospec::simnet::{coll, presets, CollAlgorithm, CollectiveConfig, Platform, Wire};
use proptest::prelude::*;
use std::sync::Arc;
use testutil::{random_platform as platform, BACKENDS, RANK_COUNTS};

/// Broadcasts `words` u32s from rank 0 with an **owned** payload,
/// returning the run report (results are each rank's received payload).
fn broadcast_owned(
    platform: &Platform,
    backend: CollAlgorithm,
    words: usize,
) -> heterospec::simnet::RunReport<Vec<u32>> {
    let cfg = CollectiveConfig::uniform(backend);
    let engine = Engine::new(platform.clone());
    let bits = (words * 32) as u64;
    engine.run(move |ctx| {
        let msg = ctx
            .is_root()
            .then(|| WireVec((0..words as u32).collect::<Vec<u32>>()));
        coll::broadcast(ctx, &cfg, 0, msg, bits)
            .expect("valid broadcast")
            .0
    })
}

/// The same broadcast with the payload behind an `Arc`.
fn broadcast_shared(
    platform: &Platform,
    backend: CollAlgorithm,
    words: usize,
) -> heterospec::simnet::RunReport<Vec<u32>> {
    let cfg = CollectiveConfig::uniform(backend);
    let engine = Engine::new(platform.clone());
    let bits = (words * 32) as u64;
    let payload: Arc<WireVec<u32>> = Arc::new(WireVec((0..words as u32).collect()));
    engine.run(move |ctx| {
        let msg = ctx.is_root().then(|| Arc::clone(&payload));
        coll::broadcast(ctx, &cfg, 0, msg, bits)
            .expect("valid broadcast")
            .0
            .clone()
    })
}

#[test]
fn arc_wire_size_matches_pointee_and_deep_copies_nothing() {
    let m = WireVec((0..300u32).collect::<Vec<u32>>());
    let shared = Arc::new(m.clone());
    assert_eq!(shared.size_bits(), m.size_bits());
    assert_eq!(m.deep_copy_bits(), m.size_bits(), "owned Vec deep-copies");
    assert_eq!(shared.deep_copy_bits(), 0, "Arc clone is a refcount bump");

    let slab: Arc<[f32]> = vec![0.0f32; 128].into();
    assert_eq!(slab.size_bits(), 128 * 32);
    assert_eq!(slab.deep_copy_bits(), 0);
}

#[test]
fn shared_broadcast_is_bit_identical_on_the_paper_networks() {
    for network in presets::four_networks() {
        for backend in BACKENDS {
            let owned = broadcast_owned(&network, backend, 300);
            let shared = broadcast_shared(&network, backend, 300);
            // `RunReport::eq` covers ledgers, results, total_time and
            // the collective-choice log; copy telemetry is excluded by
            // contract.
            assert_eq!(
                owned,
                shared,
                "owned vs shared diverged under {backend} on {}",
                network.name()
            );
            assert_eq!(owned.collectives, shared.collectives);
        }
    }
}

#[test]
fn shared_broadcast_is_bit_identical_across_rank_counts() {
    for p in RANK_COUNTS {
        let platform = platform(p);
        for backend in BACKENDS {
            let owned = broadcast_owned(&platform, backend, 97);
            let shared = broadcast_shared(&platform, backend, 97);
            assert_eq!(owned, shared, "{backend} diverged at p={p}");
            for r in 0..p {
                assert_eq!(
                    owned.result(r),
                    shared.result(r),
                    "payload drift at rank {r}, p={p}"
                );
            }
        }
    }
}

#[test]
fn owned_fanouts_copy_the_baseline_and_shared_fanouts_copy_nothing() {
    for network in presets::four_networks() {
        for backend in [CollAlgorithm::Linear, CollAlgorithm::BinomialTree] {
            let owned = broadcast_owned(&network, backend, 300);
            let shared = broadcast_shared(&network, backend, 300);
            // Owned payloads: every tracked fan-out clone deep-copies
            // the full message, so measured == baseline, and a 16-rank
            // tree definitely fans out.
            assert!(owned.copies.bytes_owned_baseline > 0);
            assert_eq!(
                owned.copies.bytes_deep_copied, owned.copies.bytes_owned_baseline,
                "owned run must copy exactly the baseline ({backend})"
            );
            assert!(owned.copies.allocs_on_hot_path > 0);
            // Shared payloads: same schedule (same baseline), zero
            // deep copies.
            assert_eq!(
                shared.copies.bytes_owned_baseline,
                owned.copies.bytes_owned_baseline
            );
            assert_eq!(shared.copies.bytes_deep_copied, 0, "{backend}");
            assert_eq!(shared.copies.allocs_on_hot_path, 0, "{backend}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any payload size × backend × rank count: the shared-payload run
    /// replays the owned-payload run exactly, and never deep-copies.
    #[test]
    fn shared_equals_owned_for_any_payload(
        words in 1usize..600,
        backend_index in 0usize..BACKENDS.len(),
        p in 2usize..17,
    ) {
        let backend = BACKENDS[backend_index];
        let platform = platform(p);
        let owned = broadcast_owned(&platform, backend, words);
        let shared = broadcast_shared(&platform, backend, words);
        prop_assert_eq!(&owned, &shared);
        prop_assert_eq!(shared.copies.bytes_deep_copied, 0);
        prop_assert!((owned.total_time - shared.total_time).abs() == 0.0);
    }
}
