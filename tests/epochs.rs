//! Epoch-stamped membership acceptance suite.
//!
//! The contract of the survivor-view collectives
//! (`simnet::coll::{Membership, *_over}`):
//!
//! 1. a collective scheduled over the survivor view routes *around* a
//!    crashed interior relay: every surviving member completes with a
//!    payload bit-identical to a healthy run over the same member set —
//!    no `PeerLost` cascade, no lost contributions;
//! 2. reruns under identical fault plans are bit-identical;
//! 3. ranks outside the view are rejected structurally
//!    (`CollError::NotAMember`) before any traffic;
//! 4. a message stamped with a superseded epoch is rejected structurally
//!    (`CollError::EpochMismatch`) and dropped, never folded.

use heterospec::simnet::engine::{Ctx, Engine, Wire, WireVec};
use heterospec::simnet::{
    coll, presets, CollAlgorithm, CollError, CollectiveConfig, FailureCause, FaultPlan, Membership,
    RunReport, Stamped,
};
use testutil::engine_with;

const P: usize = 16;
const PAYLOAD: usize = 512;

/// The post-crash view: rank 4 — segment 1's leader in the
/// segment-hierarchical tree of [`presets::fully_heterogeneous`], the
/// relay for ranks 5..=7 — has been observed dead, so the epoch is 1.
fn survivor_view() -> Membership {
    let survivors: Vec<usize> = (0..P).filter(|&r| r != 4).collect();
    Membership::from_survivors(1, P, &survivors)
}

fn cfg() -> CollectiveConfig {
    CollectiveConfig::uniform(CollAlgorithm::SegmentHierarchical)
}

/// Root broadcast of a recognizable payload over the survivor view.
/// Rank 4 plays the crashed relay: under a fault plan it burns compute
/// until the scheduled crash kills it; in the healthy baseline it just
/// exits without participating.
fn broadcast_survivors(engine: &Engine) -> RunReport<Option<Vec<f32>>> {
    engine.run(|ctx: &mut Ctx<WireVec<f32>>| {
        if ctx.rank() == 4 {
            if ctx.fault_plan().crash_time(4).is_some() {
                ctx.compute_par(1e9); // run into the scheduled crash
            }
            return None;
        }
        let view = survivor_view();
        let msg = ctx
            .is_root()
            .then(|| WireVec((0..PAYLOAD).map(|i| i as f32 * 0.5).collect()));
        let got = coll::broadcast_over(ctx, &cfg(), 0, &view, msg, (PAYLOAD * 32) as u64)
            .expect("surviving members complete the broadcast");
        Some(got.0)
    })
}

/// Elementwise-sum allreduce of per-rank contributions over the
/// survivor view; same rank-4 arrangement as [`broadcast_survivors`].
fn allreduce_survivors(engine: &Engine) -> RunReport<Option<Vec<f32>>> {
    engine.run(|ctx: &mut Ctx<WireVec<f32>>| {
        if ctx.rank() == 4 {
            if ctx.fault_plan().crash_time(4).is_some() {
                ctx.compute_par(1e9);
            }
            return None;
        }
        let view = survivor_view();
        let own = WireVec(vec![(ctx.rank() + 1) as f32; PAYLOAD]);
        let got = coll::allreduce_over(
            ctx,
            &cfg(),
            0,
            &view,
            own,
            |a, b| WireVec(a.0.iter().zip(&b.0).map(|(x, y)| x + y).collect()),
            (PAYLOAD * 32) as u64,
        )
        .expect("surviving members complete the allreduce");
        Some(got.0)
    })
}

fn crashed_engine() -> Engine {
    // 0.003 s lands mid-broadcast on this platform: headers are out,
    // the tree is streaming.
    engine_with(FaultPlan::new().crash(4, 0.003))
}

#[test]
fn broadcast_over_routes_around_a_dead_interior_relay() {
    let healthy = broadcast_survivors(&Engine::new(presets::fully_heterogeneous()));
    let crashed = broadcast_survivors(&crashed_engine());
    assert!(!crashed.ok());
    let f = crashed.failure_of(4).expect("rank 4 crash recorded");
    assert_eq!(f.cause, FailureCause::Crash);
    for r in (0..P).filter(|&r| r != 4) {
        assert_eq!(
            crashed.result(r),
            healthy.result(r),
            "rank {r}: survivor payload must match the healthy run over the same member set"
        );
        assert!(crashed.failure_of(r).is_none(), "no PeerLost cascade");
    }
    let again = broadcast_survivors(&crashed_engine());
    assert_eq!(crashed, again, "crash-plan rerun drift");
}

#[test]
fn allreduce_over_keeps_every_survivor_contribution() {
    let healthy = allreduce_survivors(&Engine::new(presets::fully_heterogeneous()));
    let crashed = allreduce_survivors(&crashed_engine());
    // Exactly the survivor contributions, summed: ranks 0..16 minus 4
    // contribute rank+1 each ⇒ Σ = 136 − 5.
    let want = vec![131.0f32; PAYLOAD];
    for r in (0..P).filter(|&r| r != 4) {
        assert_eq!(
            crashed.result(r).as_deref(),
            Some(want.as_slice()),
            "rank {r}: allreduce must fold all 15 survivor contributions"
        );
        assert_eq!(crashed.result(r), healthy.result(r), "rank {r}");
    }
    let again = allreduce_survivors(&crashed_engine());
    assert_eq!(crashed, again, "crash-plan rerun drift");
}

#[test]
fn non_members_are_rejected_before_any_traffic() {
    let report = Engine::new(presets::fully_heterogeneous()).run(|ctx: &mut Ctx<WireVec<f32>>| {
        let view = survivor_view();
        let msg = ctx.is_root().then(|| WireVec(vec![1.0f32; 8]));
        let out = coll::broadcast_over(ctx, &cfg(), 0, &view, msg, 8 * 32);
        match out {
            Ok(v) => (true, v.0.len()),
            Err(CollError::NotAMember { rank }) => (false, rank),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    });
    assert_eq!(*report.result(4), (false, 4), "rank 4 is outside the view");
    for r in (0..P).filter(|&r| r != 4) {
        assert_eq!(*report.result(r), (true, 8), "rank {r} completes");
    }
}

/// A minimal epoch-stamped wire message for [`coll::recv_epoch`].
#[derive(Debug, Clone, PartialEq)]
struct Tok {
    epoch: u64,
    value: u32,
}

impl Wire for Tok {
    fn size_bits(&self) -> u64 {
        96
    }
}

impl Stamped for Tok {
    fn stamp(&self) -> Option<u64> {
        Some(self.epoch)
    }
}

#[test]
fn stale_epoch_messages_are_rejected_and_dropped() {
    let report = Engine::new(presets::fully_heterogeneous()).run(|ctx: &mut Ctx<Tok>| {
        match ctx.rank() {
            0 => {
                // A relay still on the superseded view, then the real one.
                ctx.send(1, Tok { epoch: 0, value: 7 });
                ctx.send(
                    1,
                    Tok {
                        epoch: 1,
                        value: 42,
                    },
                );
                None
            }
            1 => {
                let stale = coll::recv_epoch(ctx, 0, 1);
                assert_eq!(
                    stale,
                    Err(CollError::EpochMismatch {
                        expected: 1,
                        got: 0
                    }),
                    "superseded stamp must surface structurally"
                );
                // The stale message was consumed, not left in the queue:
                // the next receive yields the current-epoch payload.
                let fresh = coll::recv_epoch(ctx, 0, 1).expect("current epoch accepted");
                Some(fresh.value)
            }
            _ => None,
        }
    });
    assert_eq!(*report.result(1), Some(42));
}
