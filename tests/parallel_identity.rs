//! Property tests for the data-parallel kernel layer: every parallel
//! kernel must be **bit-identical** to its sequential scan for any
//! thread count, any cube geometry (hence any chunk-grid alignment),
//! and in particular on duplicate scores, where the documented
//! lowest-`(line, sample)` tie-break must survive parallel reduction.
//!
//! The chunk grid is fixed (`PAR_CHUNK_LINES` lines per chunk,
//! independent of worker count) and chunk results merge in index order,
//! so width-invariance plus a width-1 sequential reference pins the
//! exact scalar semantics.

use heterospec::cube::HyperCube;
use heterospec::hetero::kernels;
use heterospec::linalg::covariance::CovarianceAccumulator;
use heterospec::linalg::ortho::OrthoBasis;
use heterospec::linalg::Matrix;
use heterospec::morpho::cumdist::cumdist_map;
use heterospec::morpho::ops::{dilation, erosion};
use heterospec::morpho::StructuringElement;
use proptest::prelude::*;

/// Geometry ceilings: small enough to keep the suite fast, large enough
/// that cubes straddle chunk boundaries (`PAR_CHUNK_LINES` = 8) both
/// evenly and with ragged tails.
const MAX_LINES: usize = 21;
const MAX_SAMPLES: usize = 6;
const MAX_BANDS: usize = 5;
const MAX_VALS: usize = MAX_LINES * MAX_SAMPLES * MAX_BANDS;

/// Thread widths exercised against the width-1 reference: even, odd,
/// and oversubscribed relative to the chunk count.
const WIDTHS: [usize; 3] = [2, 3, 8];

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("test pool")
}

/// Builds a cube of the given geometry from a prefix of `vals`.
fn cube_from(vals: &[f32], lines: usize, samples: usize, bands: usize) -> HyperCube {
    HyperCube::from_vec(
        lines,
        samples,
        bands,
        vals[..lines * samples * bands].to_vec(),
    )
}

/// Folds raw `(lo, span)` draws into a valid line sub-range of `lines`.
fn line_range(lines: usize, lo: usize, span: usize) -> (usize, usize) {
    let lo = lo % lines;
    let span = 1 + span % (lines - lo);
    (lo, lo + span)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The argmax scans (brightness, orthogonal projection) return the
    /// same winner — score *and* coordinates — at every width.
    #[test]
    fn argmax_kernels_width_invariant(
        vals in proptest::collection::vec(0.0f32..1.0, MAX_VALS),
        lines in 1usize..=MAX_LINES,
        samples in 1usize..=MAX_SAMPLES,
        bands in 2usize..=MAX_BANDS,
        lo in 0usize..MAX_LINES,
        span in 0usize..MAX_LINES,
    ) {
        let cube = cube_from(&vals, lines, samples, bands);
        let range = line_range(lines, lo, span);
        let mut basis = OrthoBasis::new(bands);
        let first: Vec<f64> = cube.pixel(0, 0).iter().map(|&v| v as f64).collect();
        basis.push(&first);
        let bright = pool(1).install(|| kernels::brightest(&cube, range).0);
        let proj = pool(1).install(|| kernels::max_projection(&cube, &basis, range).0);
        for w in WIDTHS {
            let p = pool(w);
            prop_assert_eq!(p.install(|| kernels::brightest(&cube, range).0), bright.clone());
            prop_assert_eq!(
                p.install(|| kernels::max_projection(&cube, &basis, range).0),
                proj.clone()
            );
        }
    }

    /// Duplicate scores: on a constant cube every pixel ties, so the
    /// winner must be the *first* pixel of the range in row-major order
    /// — at every width.
    #[test]
    fn argmax_tie_break_survives_parallelism(
        lines in 1usize..=MAX_LINES,
        samples in 1usize..=MAX_SAMPLES,
        bands in 2usize..=MAX_BANDS,
        lo in 0usize..MAX_LINES,
        span in 0usize..MAX_LINES,
        level in 0.1f32..1.0,
    ) {
        let cube = HyperCube::from_vec(
            lines, samples, bands, vec![level; lines * samples * bands]);
        let range = line_range(lines, lo, span);
        for w in [1, 2, 3, 8] {
            let best = pool(w)
                .install(|| kernels::brightest(&cube, range).0)
                .expect("non-empty range");
            prop_assert_eq!((best.line, best.sample), (range.0, 0), "width {}", w);
        }
    }

    /// The covariance path is bit-identical three ways: blocked panel
    /// update vs per-pixel scalar pushes, arbitrary pixel-boundary
    /// splits of the blocked update, and the chunk-parallel kernel
    /// across widths.
    #[test]
    fn covariance_blocked_split_and_parallel_identical(
        vals in proptest::collection::vec(-1.0f32..1.0, MAX_VALS),
        lines in 1usize..=MAX_LINES,
        samples in 1usize..=MAX_SAMPLES,
        bands in 2usize..=MAX_BANDS,
        split in 0usize..MAX_VALS,
    ) {
        let cube = cube_from(&vals, lines, samples, bands);
        let mut scalar = CovarianceAccumulator::new(bands);
        for i in 0..cube.num_pixels() {
            scalar.push_f32(cube.pixel_flat(i));
        }
        let mut blocked = CovarianceAccumulator::new(bands);
        blocked.push_pixels_f32(cube.as_slice());
        prop_assert_eq!(&scalar, &blocked);
        // Any pixel-boundary split feeds the same per-element
        // accumulation order, so halves == whole exactly.
        let cut = (split % (cube.num_pixels() + 1)) * bands;
        let mut halves = CovarianceAccumulator::new(bands);
        halves.push_pixels_f32(&cube.as_slice()[..cut]);
        halves.push_pixels_f32(&cube.as_slice()[cut..]);
        prop_assert_eq!(&scalar, &halves);
        // The chunk-parallel kernel regroups sums at chunk seams, but
        // the grid is width-independent: identical at every width.
        let reference = pool(1).install(|| kernels::covariance_partial(&cube, (0, lines)).0);
        for w in WIDTHS {
            let got = pool(w).install(|| kernels::covariance_partial(&cube, (0, lines)).0);
            prop_assert_eq!(&got, &reference, "width {}", w);
        }
    }

    /// The classification scans (PCT feature-space labels, full-space
    /// SAD labels) emit identical label vectors at every width.
    #[test]
    fn label_kernels_width_invariant(
        vals in proptest::collection::vec(0.01f32..1.0, MAX_VALS),
        lines in 1usize..=MAX_LINES,
        samples in 1usize..=MAX_SAMPLES,
        bands in 2usize..=MAX_BANDS,
        lo in 0usize..MAX_LINES,
        span in 0usize..MAX_LINES,
    ) {
        let cube = cube_from(&vals, lines, samples, bands);
        let range = line_range(lines, lo, span);
        let classes: Vec<Vec<f32>> = vec![
            cube.pixel(0, 0).to_vec(),
            cube.pixel(lines - 1, samples - 1).to_vec(),
        ];
        // A 2-component "transform": first two coordinate projections.
        let mut rows = vec![vec![0.0f64; bands]; 2];
        rows[0][0] = 1.0;
        rows[1][bands - 1] = 1.0;
        let transform = Matrix::from_rows(&[&rows[0], &rows[1]]);
        let mean = vec![0.5f64; bands];
        let reps: Vec<Vec<f64>> = vec![vec![0.1, 0.2], vec![0.4, 0.1]];
        let sad_ref = pool(1).install(|| kernels::sad_label(&cube, range, &classes).0);
        let pct_ref =
            pool(1).install(|| kernels::pct_label(&cube, range, &transform, &mean, &reps).0);
        for w in WIDTHS {
            let p = pool(w);
            prop_assert_eq!(
                p.install(|| kernels::sad_label(&cube, range, &classes).0),
                sad_ref.clone()
            );
            prop_assert_eq!(
                p.install(|| kernels::pct_label(&cube, range, &transform, &mean, &reps).0),
                pct_ref.clone()
            );
        }
    }

    /// Morphology — the cumulative-SAD map and both selections
    /// (including the sorted-offset tie-break on equal distances) — is
    /// width-invariant.
    #[test]
    fn morphology_width_invariant(
        vals in proptest::collection::vec(0.01f32..1.0, MAX_VALS),
        lines in 1usize..=MAX_LINES,
        samples in 1usize..=MAX_SAMPLES,
        bands in 2usize..=MAX_BANDS,
        radius in 1usize..=2,
    ) {
        let cube = cube_from(&vals, lines, samples, bands);
        let se = StructuringElement::square(radius);
        let map_ref = pool(1).install(|| cumdist_map(&cube, &se));
        let ero_ref = pool(1).install(|| erosion(&cube, &se));
        let dil_ref = pool(1).install(|| dilation(&cube, &se));
        for w in WIDTHS {
            let p = pool(w);
            prop_assert_eq!(p.install(|| cumdist_map(&cube, &se)), map_ref.clone());
            prop_assert_eq!(p.install(|| erosion(&cube, &se)), ero_ref.clone());
            prop_assert_eq!(p.install(|| dilation(&cube, &se)), dil_ref.clone());
        }
    }
}
