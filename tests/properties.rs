//! Property-based tests (proptest) over the core data structures and
//! invariants of the workspace.

use heterospec::cube::metrics::{brightness, euclidean, sad};
use heterospec::cube::HyperCube;
use heterospec::hetero::wea;
use heterospec::linalg::covariance::CovarianceAccumulator;
use heterospec::linalg::lstsq;
use heterospec::linalg::lu::LuDecomposition;
use heterospec::linalg::matrix::axpy;
use heterospec::linalg::ortho::OrthoBasis;
use heterospec::linalg::Matrix;
use proptest::prelude::*;

fn spectrum(bands: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.0f32..1.0, bands)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SAD is a pseudometric on spectra: non-negative, symmetric, zero
    /// on identical inputs, bounded by π.
    #[test]
    fn sad_is_pseudometric(x in spectrum(32), y in spectrum(32)) {
        let d = sad(&x, &y);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&d));
        prop_assert!((d - sad(&y, &x)).abs() < 1e-12);
        prop_assert!(sad(&x, &x) < 1e-3);
    }

    /// SAD is scale-invariant: SAD(kx, y) = SAD(x, y) for k > 0.
    #[test]
    fn sad_scale_invariant(x in spectrum(32), y in spectrum(32), k in 0.1f32..10.0) {
        let scaled: Vec<f32> = x.iter().map(|&v| v * k).collect();
        prop_assert!((sad(&scaled, &y) - sad(&x, &y)).abs() < 1e-4);
    }

    /// Triangle inequality for SAD on non-negative spectra.
    #[test]
    fn sad_triangle(a in spectrum(16), b in spectrum(16), c in spectrum(16)) {
        prop_assert!(sad(&a, &c) <= sad(&a, &b) + sad(&b, &c) + 1e-9);
    }

    /// Brightness and Euclidean agree: ||x||^2 = d(x, 0)^2.
    #[test]
    fn brightness_euclidean_consistency(x in spectrum(24)) {
        let zero = vec![0.0f32; 24];
        let d = euclidean(&x, &zero);
        prop_assert!((brightness(&x) - d * d).abs() < 1e-6 * (1.0 + brightness(&x)));
    }

    /// Row apportioning conserves the total and respects proportionality
    /// within one row.
    #[test]
    fn apportion_conserves(fracs in proptest::collection::vec(0.01f64..1.0, 2..20),
                           total in 1usize..5000) {
        let sum: f64 = fracs.iter().sum();
        let normed: Vec<f64> = fracs.iter().map(|f| f / sum).collect();
        let counts = wea::apportion_rows(&normed, total);
        prop_assert_eq!(counts.iter().sum::<usize>(), total);
        for (c, f) in counts.iter().zip(&normed) {
            let ideal = f * total as f64;
            prop_assert!((*c as f64 - ideal).abs() <= 1.0 + 1e-9);
        }
    }

    /// Memory-bounded redistribution conserves totals and respects caps.
    #[test]
    fn memory_bounds_conserve(counts in proptest::collection::vec(0usize..100, 3..8),
                              extra in 0usize..50) {
        let total: usize = counts.iter().sum();
        let n = counts.len();
        let fracs = vec![1.0 / n as f64; n];
        // Caps that definitely fit: per-node cap = total, plus slack.
        let caps: Vec<usize> = counts.iter().map(|c| c + extra + total / n + 1).collect();
        let out = wea::apply_memory_bounds(&counts, &fracs, &caps).unwrap();
        prop_assert_eq!(out.iter().sum::<usize>(), total);
        for (o, cap) in out.iter().zip(&caps) {
            prop_assert!(o <= cap);
        }
    }

    /// Covariance accumulation is merge-invariant: any split of the
    /// sample stream merges to the same statistics.
    #[test]
    fn covariance_merge_invariant(samples in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 4), 2..40),
            split in 0usize..40) {
        let split = split % samples.len();
        let mut whole = CovarianceAccumulator::new(4);
        for s in &samples { whole.push(s); }
        let mut a = CovarianceAccumulator::new(4);
        let mut b = CovarianceAccumulator::new(4);
        for s in &samples[..split] { a.push(s); }
        for s in &samples[split..] { b.push(s); }
        a.merge(&b).unwrap();
        prop_assert_eq!(a.count(), whole.count());
        let ca = a.covariance().unwrap();
        let cw = whole.covariance().unwrap();
        prop_assert!(ca.approx_eq(&cw, 1e-9));
    }

    /// LU solves random diagonally-dominant systems to high accuracy.
    #[test]
    fn lu_solves_dominant_systems(vals in proptest::collection::vec(-1.0f64..1.0, 16),
                                  rhs in proptest::collection::vec(-1.0f64..1.0, 4)) {
        let mut a = Matrix::from_vec(4, 4, vals);
        for i in 0..4 { a[(i, i)] += 5.0; }
        let x = LuDecomposition::new(&a).unwrap().solve(&rhs).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (p, q) in ax.iter().zip(&rhs) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    /// FCLS abundances always satisfy both constraints on random
    /// problems with well-separated endmembers.
    #[test]
    fn fcls_constraints_hold(a0 in 0.0f64..1.0, seedpx in proptest::collection::vec(0.01f64..1.0, 8)) {
        let u = Matrix::from_rows(&[
            &[1.0, 0.8, 0.6, 0.4, 0.3, 0.2, 0.1, 0.05],
            &[0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0],
        ]);
        // Mix plus perturbation.
        let mut x = vec![0.0; 8];
        axpy(a0, u.row(0), &mut x);
        axpy(1.0 - a0, u.row(1), &mut x);
        for (xi, p) in x.iter_mut().zip(&seedpx) {
            *xi += 0.01 * p;
        }
        let r = lstsq::fcls(&u, &x).unwrap();
        let sum: f64 = r.abundances.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3, "sum = {}", sum);
        for &a in &r.abundances {
            prop_assert!(a >= 0.0);
        }
    }

    /// The orthogonal-complement score is bounded by the squared norm
    /// and decreases (weakly) as the basis grows.
    #[test]
    fn complement_score_monotone(x in proptest::collection::vec(-1.0f64..1.0, 12),
                                 b1 in proptest::collection::vec(-1.0f64..1.0, 12),
                                 b2 in proptest::collection::vec(-1.0f64..1.0, 12)) {
        let mut basis = OrthoBasis::new(12);
        let norm2: f64 = x.iter().map(|v| v * v).sum();
        let s0 = basis.complement_score(&x);
        prop_assert!((s0 - norm2).abs() < 1e-9);
        basis.push(&b1);
        let s1 = basis.complement_score(&x);
        basis.push(&b2);
        let s2 = basis.complement_score(&x);
        prop_assert!(s1 <= s0 + 1e-9);
        prop_assert!(s2 <= s1 + 1e-9);
    }

    /// Cube line extraction is consistent with pixel indexing for any
    /// geometry.
    #[test]
    fn cube_extraction_consistent(lines in 1usize..12, samples in 1usize..12,
                                  bands in 1usize..8, first in 0usize..12, n in 1usize..12) {
        let first = first % lines;
        let n = 1 + (n % (lines - first));
        let mut cube = HyperCube::zeros(lines, samples, bands);
        for i in 0..cube.num_pixels() {
            let (l, s) = cube.coord_of(i);
            cube.pixel_mut(l, s)[0] = (l * 100 + s) as f32;
        }
        let sub = cube.extract_lines(first, n);
        prop_assert_eq!(sub.lines(), n);
        for l in 0..n {
            for s in 0..samples {
                prop_assert_eq!(sub.pixel(l, s), cube.pixel(first + l, s));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Morphological duality on random cubes: at every pixel, the
    /// erosion-selected neighbour's cumulative distance never exceeds
    /// the dilation-selected neighbour's.
    #[test]
    fn erosion_min_dilation_max(vals in proptest::collection::vec(0.01f32..1.0, 6 * 6 * 3)) {
        use heterospec::morpho::cumdist::cumdist_map;
        use heterospec::morpho::ops::{dilation, erosion};
        use heterospec::morpho::StructuringElement;
        let cube = HyperCube::from_vec(6, 6, 3, vals);
        let se = StructuringElement::square(1);
        let dist = cumdist_map(&cube, &se);
        let ero = erosion(&cube, &se);
        let dil = dilation(&cube, &se);
        for l in 0..6 {
            for s in 0..6 {
                let (el, es) = ero.at(l, s);
                let (dl, ds) = dil.at(l, s);
                prop_assert!(dist[el * 6 + es] <= dist[dl * 6 + ds] + 1e-12);
            }
        }
    }

    /// MEI scores are bounded by π and never decrease with iterations.
    #[test]
    fn mei_bounded_and_monotone(vals in proptest::collection::vec(0.01f32..1.0, 5 * 5 * 2)) {
        use heterospec::morpho::mei::mei;
        use heterospec::morpho::StructuringElement;
        let cube = HyperCube::from_vec(5, 5, 2, vals);
        let se = StructuringElement::square(1);
        let one = mei(&cube, &se, 1);
        let two = mei(&cube, &se, 2);
        for (a, b) in one.scores.iter().zip(&two.scores) {
            prop_assert!(*a >= 0.0 && *a <= std::f64::consts::PI + 1e-12);
            prop_assert!(b + 1e-12 >= *a, "scores must be max-accumulated");
        }
    }

    /// Serial-link reservations never overlap and respect request times.
    #[test]
    fn contention_serializes(durations in proptest::collection::vec(0.01f64..2.0, 1..12),
                             earliest in proptest::collection::vec(0.0f64..5.0, 1..12)) {
        use heterospec::simnet::contention::InterSegmentLinks;
        let links = InterSegmentLinks::new();
        let n = durations.len().min(earliest.len());
        let mut intervals: Vec<(f64, f64)> = Vec::new();
        for i in 0..n {
            let start = links.reserve(0, 1, earliest[i], durations[i]);
            prop_assert!(start >= earliest[i] - 1e-12);
            intervals.push((start, start + durations[i]));
        }
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in intervals.windows(2) {
            prop_assert!(w[1].0 >= w[0].1 - 1e-12, "overlap: {w:?}");
        }
    }

    /// Allreduce agrees with a sequential fold of every rank's
    /// contribution, for arbitrary payload sizes, platforms, and
    /// backends — delivered to **every** rank.
    #[test]
    fn allreduce_agrees_with_sequential_fold(seed in 0u64..1_000, p in 2usize..12,
                                             len in 1usize..300, backend in 0usize..5) {
        use heterospec::simnet::engine::{Engine, WireVec};
        use heterospec::simnet::{coll, presets, CollAlgorithm, CollectiveConfig};
        let backends = [
            CollAlgorithm::Linear,
            CollAlgorithm::BinomialTree,
            CollAlgorithm::SegmentHierarchical,
            CollAlgorithm::PipelinedChunked,
            CollAlgorithm::Auto,
        ];
        let cfg = CollectiveConfig {
            allreduce: backends[backend],
            ..CollectiveConfig::linear()
        };
        let platform = presets::random_heterogeneous(seed, p, 3, 0.002, 0.05);
        let report = Engine::new(platform).run(|ctx| {
            let r = ctx.rank() as u32;
            let own: Vec<u32> = (0..len as u32).map(|i| r ^ i.wrapping_mul(2_654_435_761)).collect();
            coll::allreduce(
                ctx,
                &cfg,
                0,
                WireVec(own),
                |a, b| WireVec(a.0.iter().zip(&b.0).map(|(x, y)| x.wrapping_add(*y)).collect()),
                (len * 32) as u64,
            )
            .0
        });
        let expect: Vec<u32> = (0..len as u32)
            .map(|i| {
                (0..p as u32)
                    .map(|r| r ^ i.wrapping_mul(2_654_435_761))
                    .fold(0u32, u32::wrapping_add)
            })
            .collect();
        for r in 0..p {
            prop_assert_eq!(report.result(r), &expect, "backend {} rank {}", backends[backend], r);
        }
    }

    /// Chunking the pipelined broadcast never changes the delivered
    /// bytes: any chunk count hands every rank the exact payload the
    /// linear star delivers.
    #[test]
    fn broadcast_chunking_never_changes_delivered_bytes(seed in 0u64..1_000, p in 2usize..10,
                                                        len in 1usize..500, chunks in 1u32..9) {
        use heterospec::simnet::engine::{Engine, WireVec};
        use heterospec::simnet::{coll, presets, CollAlgorithm, CollectiveConfig};
        let platform = presets::random_heterogeneous(seed.wrapping_add(7), p, 3, 0.002, 0.05);
        let payload: Vec<u8> = (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed as u8))
            .collect();
        let deliver = |cfg: CollectiveConfig| {
            let payload = payload.clone();
            let report = Engine::new(platform.clone()).run(move |ctx| {
                let msg = if ctx.is_root() { Some(WireVec(payload.clone())) } else { None };
                coll::broadcast(ctx, &cfg, 0, msg, (len * 8) as u64)
                    .expect("valid broadcast")
                    .0
            });
            (0..p).map(|r| report.result(r).clone()).collect::<Vec<_>>()
        };
        let chunked = deliver(CollectiveConfig {
            broadcast: CollAlgorithm::PipelinedChunked,
            pipeline_chunks: chunks,
            ..CollectiveConfig::linear()
        });
        let linear = deliver(CollectiveConfig::linear());
        for r in 0..p {
            prop_assert_eq!(&chunked[r], &payload, "chunked delivery at rank {}", r);
            prop_assert_eq!(&linear[r], &payload, "linear delivery at rank {}", r);
        }
    }

    /// Makespan WEA fractions are a probability vector that never
    /// starves the fastest processor.
    #[test]
    fn makespan_fractions_sane(mflops in 0.1f64..100.0, mbits in 0.0f64..10.0) {
        use heterospec::hetero::wea::{hetero_fractions, RowCost, WeaConfig};
        let platform = heterospec::simnet::presets::fully_heterogeneous();
        let f = hetero_fractions(
            &platform,
            RowCost { mflops_per_row: mflops, mbits_per_row: mbits, fixed_mflops: 0.0 },
            WeaConfig::default(),
        );
        prop_assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for &x in &f {
            prop_assert!(x >= 0.0);
        }
        // The root has no staging cost and the fastest CPU save one:
        // it always gets at least the uniform share.
        prop_assert!(f[0] >= 1.0 / 16.0 - 1e-9, "root share {}", f[0]);
        // p3 (fast, root's switched segment) never gets less than p10
        // (slowest CPU, behind a serial inter-segment link).
        prop_assert!(f[2] >= f[9] - 1e-12, "p3 {} < p10 {}", f[2], f[9]);
    }
}

/// Pinned counterexample from `tests/properties.proptest-regressions`
/// (upstream proptest shrank to `mflops = 0.1, mbits = 8.91318394720795`):
/// a communication-dominated row cost drove a fast-but-isolated
/// processor's share below the slowest CPU's. Promoted to an explicit
/// test per the policy in `docs/TESTING.md`.
#[test]
fn makespan_fractions_sane_at_the_communication_dominated_corner() {
    use heterospec::hetero::wea::{hetero_fractions, RowCost, WeaConfig};
    let platform = heterospec::simnet::presets::fully_heterogeneous();
    let f = hetero_fractions(
        &platform,
        RowCost {
            mflops_per_row: 0.1,
            mbits_per_row: 8.913_183_947_207_95,
            fixed_mflops: 0.0,
        },
        WeaConfig::default(),
    );
    assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(f.iter().all(|&x| x >= 0.0));
    assert!(f[0] >= 1.0 / 16.0 - 1e-9, "root share {}", f[0]);
    assert!(f[2] >= f[9] - 1e-12, "p3 {} < p10 {}", f[2], f[9]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The profiler's accounting identity is *bitwise* exact on random
    /// platforms, rank counts (2–17), and fault plans, and the critical
    /// path never exceeds the makespan. Crashed ranks profile too —
    /// their wall-clock is the crash instant.
    #[test]
    fn profile_identity_exact_on_random_runs(seed in 0u64..1_000, p in 2usize..18,
                                             crash_pick in 0usize..17,
                                             crash_at in 0.001f64..0.5,
                                             do_crash in 0u8..2) {
        use heterospec::simnet::engine::{Ctx, Engine, WireVec};
        use heterospec::simnet::{presets, FaultPlan};
        let platform = presets::random_heterogeneous(seed, p, 3, 0.002, 0.05);
        let mut plan = FaultPlan::new();
        if do_crash == 1 && p > 1 {
            // Crash a worker (never the root): the master tolerates it
            // through recv_deadline's failure observation.
            plan = plan.crash(1 + crash_pick % (p - 1), crash_at);
        }
        let engine = Engine::new(platform).with_faults(plan).with_profiling(true);
        let report = engine.run(move |ctx: &mut Ctx<WireVec<f32>>| {
            let mut state = seed ^ (ctx.rank() as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
            for _ in 0..2 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ctx.compute_par(((state >> 33) % 500) as f64);
                if ctx.is_root() {
                    for src in 1..ctx.num_ranks() {
                        let deadline = ctx.elapsed() + 5.0;
                        // Payloads are irrelevant: timeouts and observed
                        // failures are legitimate outcomes here.
                        let _ = ctx.recv_deadline(src, deadline);
                    }
                } else {
                    ctx.send(0, WireVec(vec![0.0f32; 128]));
                }
            }
            ctx.elapsed()
        });
        let profile = report.profile.as_ref().expect("profiling enabled");
        prop_assert_eq!(profile.ranks.len(), p);
        for r in &profile.ranks {
            prop_assert!(
                r.identity_holds(),
                "rank {}: accounted {:e} ({:#x}) != wall {:e} ({:#x})",
                r.rank,
                r.phases.accounted(),
                r.phases.accounted().to_bits(),
                r.wall,
                r.wall.to_bits()
            );
        }
        prop_assert!(
            profile.critical_path.length <= profile.makespan,
            "critical path {:e} exceeds makespan {:e}",
            profile.critical_path.length,
            profile.makespan
        );
        prop_assert!(profile.path_bounded());
    }
}

/// The engine's virtual timestamps are deterministic under arbitrary
/// (valid) master/worker traffic patterns.
#[test]
fn engine_determinism_random_traffic() {
    use heterospec::simnet::engine::{Ctx, Engine, WireVec};
    use heterospec::simnet::presets;
    let run = |seed: u64| {
        let engine = Engine::new(presets::fully_heterogeneous());
        let report = engine.run(move |ctx: &mut Ctx<WireVec<f32>>| {
            // Pseudo-random per-rank compute, then a gather+broadcast.
            let mut state = seed ^ (ctx.rank() as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
            for _ in 0..3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let mflops = ((state >> 33) % 1000) as f64;
                ctx.compute_par(mflops);
                if ctx.is_root() {
                    for src in 1..ctx.num_ranks() {
                        let _ = ctx.recv(src);
                    }
                    for dst in 1..ctx.num_ranks() {
                        ctx.send(dst, WireVec(vec![0.0f32; 64]));
                    }
                } else {
                    ctx.send(0, WireVec(vec![0.0f32; 256]));
                    let _ = ctx.recv(0);
                }
            }
            ctx.elapsed()
        });
        report.results
    };
    for seed in [1u64, 42, 20010916] {
        assert_eq!(run(seed), run(seed), "seed {seed} not deterministic");
    }
}
