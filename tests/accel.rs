//! Accelerator offload acceptance suite.
//!
//! Contract of `simnet::accel` + `hetero::offload`:
//!
//! 1. device execution is **bit-identical** to host execution — the
//!    same kernels run in the same order under every [`OffloadPolicy`];
//!    only time accounting differs, so fixed-grid runs produce equal
//!    outputs across `Never`/`Always`/`Auto`;
//! 2. `accel::cost::predict_offload` equals the engine-measured virtual
//!    time of the offload **exactly** (same closed form, same `f64`
//!    arithmetic);
//! 3. `Auto` is never slower than `Never` on the tested configurations
//!    and strictly faster on a GPU-bearing preset;
//! 4. reruns are deterministic, including the per-rank
//!    `RunReport::offloads` telemetry;
//! 5. a mid-run crash of a device-bearing rank degrades structurally
//!    under both fault-tolerant drivers.

use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::hetero::ft::{run_replan, run_self_sched};
use heterospec::hetero::msg::Msg;
use heterospec::hetero::par::{atdca, morph, pct, ufcls};
use heterospec::hetero::sched::{AtdcaChunks, MorphChunks, PctChunks, UfclsChunks};
use heterospec::hetero::{seq, OffloadPolicy};
use heterospec::simnet::accel;
use heterospec::simnet::engine::Engine;
use heterospec::simnet::{presets, Ctx, FailureCause, FaultPlan};

use testutil::{coords, ft_opts, tiny_scene as scene, POLICIES};

fn params() -> AlgoParams {
    testutil::params(5, 2)
}

/// The replay-equals-measured contract, extended to devices: the
/// analytic `predict_offload` equals the engine's charged virtual time
/// bit for bit, on every device of the heterogeneous accel preset.
#[test]
fn predict_offload_matches_measured_virtual_time_exactly() {
    let engine = Engine::new(presets::accel_heterogeneous());
    let mflops = 12.5;
    let (h2d, d2h) = (3_000_000u64, 40_000u64);
    let report = engine.run(|ctx: &mut Ctx<Msg>| {
        let spec = ctx.device().copied();
        spec.map(|spec| {
            let predicted = accel::cost::predict_offload(&spec, mflops, h2d, d2h);
            let before = ctx.elapsed();
            ctx.offload(mflops, h2d, d2h);
            (before, ctx.elapsed(), predicted)
        })
    });
    let mut devices = 0;
    for (rank, r) in report.results.iter().enumerate() {
        if let Some((before, after, predicted)) = r.as_ref().expect("rank completed") {
            assert_eq!(
                *after,
                before + predicted,
                "rank {rank}: measured time diverges from predict_offload"
            );
            devices += 1;
            let stats = &report.offloads[rank];
            assert_eq!(stats.launches, 1);
            assert_eq!(stats.bytes_h2d, h2d);
            assert_eq!(stats.bytes_d2h, d2h);
            assert!(stats.device_ms > 0.0);
        } else {
            assert!(report.offloads[rank].is_empty());
        }
    }
    // 7 GPU Athlons + 1 FPGA Pentium carry devices on this preset.
    assert_eq!(devices, 8);
}

/// Bit-identity across policies on the fixed self-scheduling grid, for
/// all four algorithms on both accel presets: device execution changes
/// *when* things complete, never *what* is computed.
#[test]
fn device_output_is_bit_identical_to_host_across_algorithms() {
    let s = scene();
    let p = params();
    for platform in [
        presets::accel_heterogeneous(),
        presets::accel_thunderhead(6),
    ] {
        // ATDCA / UFCLS (grid-independent argmax algorithms).
        let atdca_runs: Vec<_> = POLICIES
            .iter()
            .map(|&pol| {
                run_self_sched(
                    &Engine::new(platform.clone()),
                    &AtdcaChunks::new(&s.cube, &p),
                    &ft_opts(pol),
                )
            })
            .collect();
        let ufcls_runs: Vec<_> = POLICIES
            .iter()
            .map(|&pol| {
                run_self_sched(
                    &Engine::new(platform.clone()),
                    &UfclsChunks::new(&s.cube, &p),
                    &ft_opts(pol),
                )
            })
            .collect();
        for r in &atdca_runs[1..] {
            assert_eq!(
                coords(&r.output),
                coords(&atdca_runs[0].output),
                "ATDCA output depends on offload policy on {}",
                platform.name()
            );
        }
        for r in &ufcls_runs[1..] {
            assert_eq!(coords(&r.output), coords(&ufcls_runs[0].output));
        }
        // PCT / MORPH (grid-dependent — the fixed grid pins them).
        let pct_runs: Vec<_> = POLICIES
            .iter()
            .map(|&pol| {
                run_self_sched(
                    &Engine::new(platform.clone()),
                    &PctChunks::new(&s.cube, &p),
                    &ft_opts(pol),
                )
            })
            .collect();
        for r in &pct_runs[1..] {
            assert_eq!(r.output.0.as_slice(), pct_runs[0].output.0.as_slice());
            assert_eq!(r.output.1.mean, pct_runs[0].output.1.mean);
        }
        let morph_runs: Vec<_> = POLICIES
            .iter()
            .map(|&pol| {
                run_self_sched(
                    &Engine::new(platform.clone()),
                    &MorphChunks::new(&s.cube, &p),
                    &ft_opts(pol),
                )
            })
            .collect();
        for r in &morph_runs[1..] {
            assert_eq!(r.output.0.as_slice(), morph_runs[0].output.0.as_slice());
            assert_eq!(r.output.1, morph_runs[0].output.1);
        }
    }
}

/// The partitioned algorithms under `Auto`: ATDCA/UFCLS are partition-
/// independent, so offloading (which resizes WEA partitions through the
/// effective speeds) still reproduces the sequential targets; the
/// grid-dependent classifiers stay well-formed.
#[test]
fn partitioned_algorithms_stay_correct_under_auto() {
    let s = scene();
    let p = params();
    let engine = Engine::new(presets::accel_heterogeneous());
    let auto = RunOptions::hetero().with_offload(OffloadPolicy::Auto);
    let want_atdca = coords(&seq::atdca(&s.cube, &p).result);
    assert_eq!(
        coords(&atdca::run(&engine, &s.cube, &p, &auto).result),
        want_atdca
    );
    let want_ufcls = coords(&seq::ufcls(&s.cube, &p).result);
    assert_eq!(
        coords(&ufcls::run(&engine, &s.cube, &p, &auto).result),
        want_ufcls
    );
    for labels in [
        pct::run(&engine, &s.cube, &p, &auto).result.0,
        morph::run(&engine, &s.cube, &p, &auto).result.0,
    ] {
        assert_eq!(labels.lines(), s.cube.lines());
        for &l in labels.as_slice() {
            assert!((l as usize) < p.num_classes);
        }
    }
}

/// `Auto` never loses to `Never` on the tested configurations, and is
/// strictly faster on the GPU-everywhere preset (where every chunk's
/// device time beats the host by a wide margin).
#[test]
fn auto_is_undominated_and_wins_on_gpu_presets() {
    let s = scene();
    let p = params();
    for platform in [
        presets::accel_heterogeneous(),
        presets::accel_thunderhead(6),
    ] {
        let algo = AtdcaChunks::new(&s.cube, &p);
        let never = run_self_sched(
            &Engine::new(platform.clone()),
            &algo,
            &ft_opts(OffloadPolicy::Never),
        );
        let auto = run_self_sched(
            &Engine::new(platform.clone()),
            &algo,
            &ft_opts(OffloadPolicy::Auto),
        );
        assert!(
            auto.report.total_time <= never.report.total_time,
            "{}: auto {:.4} slower than never {:.4}",
            platform.name(),
            auto.report.total_time,
            never.report.total_time
        );
        let never_rp = run_replan(
            &Engine::new(platform.clone()),
            &algo,
            &ft_opts(OffloadPolicy::Never),
        );
        let auto_rp = run_replan(
            &Engine::new(platform.clone()),
            &algo,
            &ft_opts(OffloadPolicy::Auto),
        );
        assert!(
            auto_rp.report.total_time <= never_rp.report.total_time,
            "{} replan: auto {:.4} slower than never {:.4}",
            platform.name(),
            auto_rp.report.total_time,
            never_rp.report.total_time
        );
    }
    // Strictly faster where every node carries a GPU.
    let platform = presets::accel_thunderhead(6);
    let algo = MorphChunks::new(&s.cube, &p);
    let never = run_self_sched(
        &Engine::new(platform.clone()),
        &algo,
        &ft_opts(OffloadPolicy::Never),
    );
    let auto = run_self_sched(&Engine::new(platform), &algo, &ft_opts(OffloadPolicy::Auto));
    assert!(
        auto.report.total_time < never.report.total_time,
        "auto {:.4} should strictly beat never {:.4} on the GPU cluster",
        auto.report.total_time,
        never.report.total_time
    );
}

/// Offload decisions and telemetry are deterministic: identical reruns
/// produce equal reports (the comparison includes `offloads`), and the
/// telemetry lands where the devices are.
#[test]
fn offload_telemetry_is_deterministic_and_attributed() {
    let s = scene();
    let p = params();
    let auto = RunOptions::hetero().with_offload(OffloadPolicy::Auto);
    let run = || {
        atdca::run(
            &Engine::new(presets::accel_heterogeneous()),
            &s.cube,
            &p,
            &auto,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.report, b.report, "offload rerun drift");
    assert_eq!(coords(&a.result), coords(&b.result));
    assert_eq!(a.report.offloads.len(), 16);
    // p3 (Athlon + GPU) offloads; p2 (Xeon, no device) never does.
    assert!(a.report.offloads[2].launches > 0, "GPU rank never launched");
    assert_eq!(a.report.offloads[1].launches, 0);
    // Per-rank summaries carry the promoted arch + device labels.
    assert_eq!(a.report.ranks.len(), 16);
    assert_eq!(a.report.ranks[2].device, Some("GPU"));
    assert_eq!(a.report.ranks[1].device, None);
    assert!(a.report.ranks[1].arch.contains("Xeon"));
    // Under `Never` the same devices stay idle.
    let never = atdca::run(
        &Engine::new(presets::accel_heterogeneous()),
        &s.cube,
        &p,
        &RunOptions::hetero(),
    );
    assert!(never.report.offloads.iter().all(|o| o.launches == 0));
    assert!(
        never.report.offloads[1].host_ms > 0.0,
        "host time untracked"
    );
}

/// A device-bearing rank crashing mid-run degrades structurally under
/// both fault-tolerant drivers: correct output from the survivors, a
/// structured `Crash` record, and bit-identical replays (offload
/// telemetry included).
#[test]
fn device_bearing_rank_crash_degrades_structurally_in_both_drivers() {
    let s = scene();
    let p = params();
    let want = coords(&seq::atdca(&s.cube, &p).result);
    let algo = AtdcaChunks::new(&s.cube, &p);
    // Rank 2 carries the GPU on this preset; crash it mid-round.
    let engine =
        || Engine::new(presets::accel_heterogeneous()).with_faults(FaultPlan::new().crash(2, 0.02));
    for policy in [OffloadPolicy::Always, OffloadPolicy::Auto] {
        let opts = ft_opts(policy);
        let ss = run_self_sched(&engine(), &algo, &opts);
        assert_eq!(coords(&ss.output), want, "{policy:?} self-sched");
        assert!(!ss.recoveries.is_empty());
        assert_eq!(
            ss.report.failure_of(2).expect("crash recorded").cause,
            FailureCause::Crash
        );
        let rp = run_replan(&engine(), &algo, &opts);
        assert_eq!(coords(&rp.output), want, "{policy:?} replan");
        assert!(!rp.recoveries.is_empty());
        let ss2 = run_self_sched(&engine(), &algo, &opts);
        assert_eq!(ss.report, ss2.report, "{policy:?} self-sched rerun drift");
        let rp2 = run_replan(&engine(), &algo, &opts);
        assert_eq!(rp.report, rp2.report, "{policy:?} replan rerun drift");
    }
}
